// Command paperfigs regenerates the tables and figures of the paper's
// evaluation section. Each figure's data is printed as a text table
// whose rows match what the paper plots.
//
// Usage:
//
//	paperfigs -all                # every table and figure
//	paperfigs -fig 8              # one figure
//	paperfigs -table 2            # one table
//	paperfigs -fig 8 -scale 1.0   # full Table II footprints (slow)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gpuwalk/internal/experiments"
	"gpuwalk/internal/simcache"
	"gpuwalk/internal/workload"
)

// defaultCacheDir is where -resume keeps results between invocations.
const defaultCacheDir = ".paperfigs-cache"

func main() {
	os.Exit(run())
}

// run is main's body; returning (rather than os.Exit) lets the
// deferred cache close and hit/miss summary fire on an interrupted
// sweep, whose partial results are the whole point of -resume.
func run() int {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 2,3,5,6,8,9,10,11,12,13,14 (comma-separated)")
		table      = flag.String("table", "", "table to regenerate: 1,2 (comma-separated)")
		discussion = flag.Bool("discussion", false, "run the Section VI large-page comparison")
		fairness   = flag.Bool("fairness", false, "run the CU-fair QoS extension comparison")
		tenants    = flag.String("multitenant", "", "co-run two apps, e.g. MVT,KMN (aggressor,victim)")
		bars       = flag.Bool("bars", false, "also render bar charts for the normalized figures")
		csvdir     = flag.String("csvdir", "", "also write each figure's data as CSV into this directory")
		all        = flag.Bool("all", false, "regenerate everything")
		scale      = flag.Float64("scale", 0.125, "workload footprint scale vs Table II")
		wfs        = flag.Int("wavefronts", 0, "wavefronts per CU (0 = calibrated default)")
		instrs     = flag.Int("instrs", 0, "memory instructions per wavefront (0 = calibrated default)")
		seed       = flag.Uint64("seed", 1, "deterministic seed")
		jobs       = flag.Int("j", 0, "parallel simulations (0 = GOMAXPROCS); results are unaffected")
		seeds      = flag.Int("seeds", 1, "aggregate figures 8-12 over this many seeds (geomean + spread)")
		cacheDir   = flag.String("cache", "", "persist results in this directory and reuse them across runs")
		resume     = flag.Bool("resume", false, "shorthand for -cache "+defaultCacheDir+": resume an interrupted sweep")
	)
	flag.Parse()

	if !*all && *fig == "" && *table == "" && !*discussion && !*fairness && *tenants == "" {
		flag.Usage()
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancels the sweep; with a cache attached, runs
	// already completed are on disk and a rerun resumes after them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	suite := experiments.NewSuite(workload.GenConfig{
		Scale:              *scale,
		WavefrontsPerCU:    *wfs,
		InstrsPerWavefront: *instrs,
		Seed:               *seed,
	}, *seed)

	dir := *cacheDir
	if dir == "" && *resume {
		dir = defaultCacheDir
	}
	if dir != "" {
		cache, err := simcache.Open(dir, simcache.Options{})
		if err != nil {
			fatalf("opening cache: %v", err)
		}
		defer cache.Close()
		suite.SetPersist(cache)
		defer func() {
			st := cache.Stats()
			fmt.Fprintf(os.Stderr, "paperfigs: cache %s: %d hits, %d misses, %d new results stored\n",
				dir, st.Hits, st.Misses, st.Puts)
		}()
	}

	tables := pick(*table, *all, []string{"1", "2"})
	figs := pick(*fig, *all, []string{"2", "3", "5", "6", "8", "9", "10", "11", "12", "13", "14"})

	// Fill the run cache on a worker pool; each simulation is
	// single-threaded and deterministic, so parallelism only affects
	// wall time.
	if len(figs) > 0 && *seeds <= 1 {
		var specs []experiments.RunSpec
		specs = append(specs, experiments.BaselineSpecs()...)
		for _, f := range figs {
			if f == "13" || f == "14" {
				specs = append(specs, experiments.SensitivitySpecs()...)
				break
			}
		}
		if err := suite.Prewarm(ctx, *jobs, specs); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "paperfigs: interrupted; completed runs are in the cache, rerun to resume")
				return 130
			}
			fatalf("prewarm: %v", err)
		}
	}

	for _, t := range tables {
		switch t {
		case "1":
			experiments.PrintTable1(os.Stdout)
		case "2":
			experiments.PrintTable2(os.Stdout)
		default:
			fatalf("unknown table %q", t)
		}
	}
	for _, f := range figs {
		if *seeds > 1 {
			if done, err := runFigMultiSeed(f, *seed, *seeds, *jobs, suite.Gen); err != nil {
				fatalf("figure %s: %v", f, err)
			} else if done {
				continue
			}
		}
		if err := runFig(suite, f, *bars, *csvdir); err != nil {
			fatalf("figure %s: %v", f, err)
		}
	}
	if *discussion || *all {
		rows, err := suite.LargePages()
		if err != nil {
			fatalf("large-page discussion: %v", err)
		}
		experiments.PrintLargePages(os.Stdout, rows)
	}
	if *fairness || *all {
		rows, err := suite.Fairness()
		if err != nil {
			fatalf("fairness comparison: %v", err)
		}
		experiments.PrintFairness(os.Stdout, rows)
	}
	pair := *tenants
	if *all && pair == "" {
		pair = "MVT,KMN"
	}
	if pair != "" {
		parts := strings.Split(pair, ",")
		if len(parts) != 2 {
			fatalf("-multitenant wants aggressor,victim; got %q", pair)
		}
		rows, err := suite.MultiTenant(parts[0], parts[1])
		if err != nil {
			fatalf("multi-tenant comparison: %v", err)
		}
		experiments.PrintMultiTenant(os.Stdout, parts[0], parts[1], rows)
	}
	return 0
}

// runFigMultiSeed handles the ratio figures under -seeds N; it reports
// done=false for figures without a multi-seed form.
func runFigMultiSeed(f string, baseSeed uint64, n, jobs int, gen workload.GenConfig) (bool, error) {
	figs := map[string]struct {
		fn    func(*experiments.Suite) ([]experiments.RatioRow, error)
		title string
	}{
		"8":  {(*experiments.Suite).Fig8, "Figure 8: speedup with SIMT-aware scheduler"},
		"9":  {(*experiments.Suite).Fig9, "Figure 9: normalized GPU stall cycles"},
		"10": {(*experiments.Suite).Fig10, "Figure 10: normalized first-to-last walk gap"},
		"11": {(*experiments.Suite).Fig11, "Figure 11: normalized page table walks"},
		"12": {(*experiments.Suite).Fig12, "Figure 12: normalized distinct wavefronts per epoch"},
	}
	spec, ok := figs[f]
	if !ok {
		return false, nil
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = baseSeed + uint64(i)
	}
	rows, err := experiments.MultiSeedRatio(gen, seeds, spec.fn, jobs)
	if err != nil {
		return true, err
	}
	experiments.PrintAggRows(os.Stdout, fmt.Sprintf("%s — %d seeds", spec.title, n), rows)
	return true, nil
}

func pick(csv string, all bool, everything []string) []string {
	if all {
		return everything
	}
	if csv == "" {
		return nil
	}
	return strings.Split(csv, ",")
}

func runFig(s *experiments.Suite, f string, bars bool, csvdir string) error {
	writeCSV := func(name string, header []string, rows [][]string) error {
		if csvdir == "" {
			return nil
		}
		return experiments.WriteCSV(csvdir, name, header, rows)
	}
	ratio := func(rows []experiments.RatioRow, title, column string) error {
		experiments.PrintRatioRows(os.Stdout, title, column, rows)
		if bars {
			experiments.PlotRatioRows(os.Stdout, title+" (bars)", rows)
		}
		h, out := experiments.RatioCSV(column, rows)
		return writeCSV("fig"+f, h, out)
	}
	switch f {
	case "2":
		rows, err := s.Fig2()
		if err != nil {
			return err
		}
		experiments.PrintFig2(os.Stdout, rows)
		if bars {
			experiments.PlotFig2(os.Stdout, rows)
		}
		h, out := experiments.Fig2CSV(rows)
		return writeCSV("fig2", h, out)
	case "3":
		rows, err := s.Fig3()
		if err != nil {
			return err
		}
		experiments.PrintFig3(os.Stdout, rows)
		h, out := experiments.Fig3CSV(rows)
		return writeCSV("fig3", h, out)
	case "5":
		rows, err := s.Fig5()
		if err != nil {
			return err
		}
		experiments.PrintFig5(os.Stdout, rows)
	case "6":
		rows, err := s.Fig6()
		if err != nil {
			return err
		}
		experiments.PrintFig6(os.Stdout, rows)
	case "8":
		rows, err := s.Fig8()
		if err != nil {
			return err
		}
		return ratio(rows, "Figure 8: speedup with SIMT-aware page walk scheduler", "speedup over fcfs")
	case "9":
		rows, err := s.Fig9()
		if err != nil {
			return err
		}
		return ratio(rows, "Figure 9: GPU stall cycles (normalized to FCFS)", "normalized stalls")
	case "10":
		rows, err := s.Fig10()
		if err != nil {
			return err
		}
		return ratio(rows, "Figure 10: first-to-last walk latency gap (normalized to FCFS)", "normalized gap")
	case "11":
		rows, err := s.Fig11()
		if err != nil {
			return err
		}
		return ratio(rows, "Figure 11: page table walks (normalized to FCFS)", "normalized walks")
	case "12":
		rows, err := s.Fig12()
		if err != nil {
			return err
		}
		return ratio(rows, "Figure 12: distinct wavefronts at GPU L2 TLB per epoch (normalized to FCFS)", "normalized wavefronts")
	case "13":
		rows, err := s.Sensitivity(experiments.Fig13Variants())
		if err != nil {
			return err
		}
		experiments.PrintSensitivity(os.Stdout, "Figure 13: sensitivity to L2 TLB size and walker count", rows)
		h, out := experiments.SensitivityCSV(rows)
		return writeCSV("fig13", h, out)
	case "14":
		rows, err := s.Sensitivity(experiments.Fig14Variants())
		if err != nil {
			return err
		}
		experiments.PrintSensitivity(os.Stdout, "Figure 14: sensitivity to IOMMU buffer size", rows)
		h, out := experiments.SensitivityCSV(rows)
		return writeCSV("fig14", h, out)
	default:
		return fmt.Errorf("unknown figure %q", f)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "paperfigs: "+format+"\n", args...)
	os.Exit(1)
}
