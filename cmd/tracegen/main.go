// Command tracegen generates a benchmark's memory trace and writes it
// to a file, or inspects an existing trace file.
//
// Usage:
//
//	tracegen -workload MVT -o mvt.trace
//	tracegen -inspect mvt.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuwalk/internal/traceio"
	"gpuwalk/internal/workload"
)

func main() {
	var (
		wl      = flag.String("workload", "MVT", "benchmark abbreviation")
		out     = flag.String("o", "", "output file (required unless -inspect)")
		inspect = flag.String("inspect", "", "trace file to summarize instead of generating")
		scale   = flag.Float64("scale", 0.125, "footprint scale vs Table II")
		wfs     = flag.Int("wavefronts", 0, "wavefronts per CU (0 = default)")
		instrs  = flag.Int("instrs", 0, "memory instructions per wavefront (0 = default)")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	if *inspect != "" {
		tr, err := traceio.LoadFile(*inspect)
		if err != nil {
			fatal(err)
		}
		summarize(tr)
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o or -inspect required")
		flag.Usage()
		os.Exit(2)
	}
	g, err := workload.ByName(*wl)
	if err != nil {
		fatal(err)
	}
	tr := g.Generate(workload.GenConfig{
		Scale:              *scale,
		WavefrontsPerCU:    *wfs,
		InstrsPerWavefront: *instrs,
		Seed:               *seed,
	})
	if err := traceio.SaveFile(*out, tr); err != nil {
		fatal(err)
	}
	summarize(tr)
	fmt.Println("written to", *out)
}

func summarize(tr *workload.Trace) {
	kind := "regular"
	if tr.Irregular {
		kind = "irregular"
	}
	fmt.Printf("trace             %s (%s)\n", tr.Name, kind)
	fmt.Printf("footprint         %.1f MB (scaled)\n", float64(tr.Footprint)/(1024*1024))
	workload.Analyze(tr, 12).Print(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
