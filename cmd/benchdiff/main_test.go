package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBench(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{"model_version":"v4","cold_seconds":2.0,"warm_seconds":0.01,"speedup":200}`

func runDiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestWithinThresholdPasses(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)
	fresh := writeBench(t, "new.json", `{"model_version":"v4","cold_seconds":2.4,"warm_seconds":0.012}`)
	code, out, _ := runDiff(t, "-base", base, "-new", fresh, "-threshold", "0.5")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "ok") || strings.Contains(out, "REGRESSION") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestRegressionFails(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)
	fresh := writeBench(t, "new.json", `{"model_version":"v4","cold_seconds":4.0,"warm_seconds":0.01}`)
	code, out, _ := runDiff(t, "-base", base, "-new", fresh, "-threshold", "0.5")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "cold_seconds") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestImprovementPasses(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)
	fresh := writeBench(t, "new.json", `{"model_version":"v4","cold_seconds":1.0,"warm_seconds":0.005}`)
	code, out, _ := runDiff(t, "-base", base, "-new", fresh)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out)
	}
}

func TestHigherIsBetterInverts(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)

	// speedup dropped 200 -> 80: a >50% loss on a higher-is-better
	// metric must regress even though the raw delta is negative.
	fresh := writeBench(t, "new.json", `{"model_version":"v4","speedup":80}`)
	code, out, _ := runDiff(t, "-base", base, "-new", fresh, "-metrics", "higher:speedup", "-threshold", "0.5")
	if code != 1 {
		t.Fatalf("throughput drop: exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "speedup") {
		t.Fatalf("report:\n%s", out)
	}

	// speedup rose 200 -> 400: a gain must pass, however large —
	// without the prefix the same file regresses.
	fresh = writeBench(t, "up.json", `{"model_version":"v4","speedup":400}`)
	if code, out, _ := runDiff(t, "-base", base, "-new", fresh, "-metrics", "higher:speedup", "-threshold", "0.5"); code != 0 {
		t.Fatalf("throughput gain: exit = %d, want 0\n%s", code, out)
	}
	if code, _, _ := runDiff(t, "-base", base, "-new", fresh, "-metrics", "speedup", "-threshold", "0.5"); code != 1 {
		t.Fatalf("same delta without higher: prefix should regress, got exit %d", code)
	}
}

func TestModelVersionMismatchNoted(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)
	fresh := writeBench(t, "new.json", `{"model_version":"v5","cold_seconds":2.0,"warm_seconds":0.01}`)
	_, out, _ := runDiff(t, "-base", base, "-new", fresh)
	if !strings.Contains(out, "model_version differs") {
		t.Fatalf("no mismatch note in:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	base := writeBench(t, "base.json", baseDoc)
	for name, args := range map[string][]string{
		"missing -new":   {"-base", base},
		"missing file":   {"-base", base, "-new", filepath.Join(t.TempDir(), "absent.json")},
		"missing metric": {"-base", base, "-new", base, "-metrics", "no_such_metric"},
		"malformed base": {"-base", writeBench(t, "bad.json", "not json"), "-new", base},
	} {
		if code, out, errOut := runDiff(t, args...); code != 2 {
			t.Errorf("%s: exit = %d, want 2\nstdout: %s\nstderr: %s", name, code, out, errOut)
		}
	}
}
