// Command benchdiff compares a freshly measured benchmark JSON file
// against a committed baseline and fails when a metric regressed past
// a threshold. It understands the flat JSON objects the repo's timing
// tests and load harness write (BENCH_cache.json, BENCH_load.json and
// friends): string metadata plus float64 metrics.
//
// Metrics are lower-is-better by default; prefix a name with "higher:"
// for throughput-style metrics where a *drop* is the regression.
//
//	go test -run TestBenchCacheColdWarm .            # writes BENCH_cache.json
//	BENCH_CACHE_OUT=/tmp/fresh.json go test -run TestBenchCacheColdWarm .
//	benchdiff -base BENCH_cache.json -new /tmp/fresh.json \
//	    -metrics cold_seconds,warm_seconds -threshold 0.5
//	benchdiff -base BENCH_load.json -new /tmp/load.json \
//	    -metrics submit_p99_ms,higher:achieved_qps
//
// Exit status: 0 when every compared metric is within threshold (or
// improved), 1 on a regression, 2 on usage or file errors. Timing on
// shared CI runners is noisy, so CI runs this as a non-blocking step:
// the report is the artifact, the exit code is advisory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base      = fs.String("base", "BENCH_cache.json", "committed baseline JSON file")
		fresh     = fs.String("new", "", "freshly measured JSON file (required)")
		metrics   = fs.String("metrics", "cold_seconds,warm_seconds", "comma-separated metrics to compare (lower-is-better unless prefixed with higher:)")
		threshold = fs.Float64("threshold", 0.5, "allowed fractional slowdown before failing (0.5 = +50%)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *fresh == "" {
		fmt.Fprintln(stderr, "benchdiff: -new is required")
		fs.Usage()
		return 2
	}
	baseDoc, err := load(*base)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newDoc, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	// A baseline measured under a different simulator model is not
	// comparable run-for-run; say so rather than crying regression.
	if bv, nv := baseDoc.strings["model_version"], newDoc.strings["model_version"]; bv != nv {
		fmt.Fprintf(stdout, "note: model_version differs (base %q vs new %q); timings may not be comparable\n", bv, nv)
	}

	regressions := 0
	for _, name := range splitMetrics(*metrics) {
		// "higher:achieved_qps" inverts the comparison: the metric is
		// higher-is-better, so a drop past the threshold is the
		// regression. The prefix is compare-time only; the JSON key has
		// no prefix.
		key, higher := strings.CutPrefix(name, "higher:")
		bv, bok := baseDoc.numbers[key]
		nv, nok := newDoc.numbers[key]
		switch {
		case !bok || !nok:
			fmt.Fprintf(stderr, "benchdiff: metric %q missing (base present=%v, new present=%v)\n", key, bok, nok)
			return 2
		case bv <= 0:
			fmt.Fprintf(stdout, "%-14s base %.3f: skipped (non-positive baseline)\n", key, bv)
		default:
			delta := (nv - bv) / bv
			adverse := delta
			if higher {
				adverse = -delta
			}
			verdict := "ok"
			if adverse > *threshold {
				verdict = "REGRESSION"
				regressions++
			}
			fmt.Fprintf(stdout, "%-14s base %8.3f  new %8.3f  %+7.1f%%  %s\n",
				key, bv, nv, delta*100, verdict)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "%d metric(s) regressed more than %+.0f%%\n", regressions, *threshold*100)
		return 1
	}
	return 0
}

// doc is one parsed benchmark file, split into its float metrics and
// its string metadata.
type doc struct {
	numbers map[string]float64
	strings map[string]string
}

func load(path string) (doc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return doc{}, err
	}
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		return doc{}, fmt.Errorf("%s: %w", path, err)
	}
	d := doc{numbers: map[string]float64{}, strings: map[string]string{}}
	for k, v := range raw {
		switch v := v.(type) {
		case float64:
			d.numbers[k] = v
		case string:
			d.strings[k] = v
		}
	}
	return d, nil
}

func splitMetrics(s string) []string {
	var out []string
	for _, m := range strings.Split(s, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}
