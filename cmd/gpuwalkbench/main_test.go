package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gpuwalk/internal/jobd"
)

// fakeRunner mimics gpuwalkd's cached runner: first sight of a spec
// simulates (reports progress, sleeps a moment), repeats are hits.
type fakeRunner struct {
	mu   sync.Mutex
	seen map[string]bool
}

func (f *fakeRunner) run(ctx context.Context, spec json.RawMessage) (json.RawMessage, bool, error) {
	key := string(spec)
	f.mu.Lock()
	hit := f.seen[key]
	f.seen[key] = true
	f.mu.Unlock()
	if hit {
		return spec, true, nil
	}
	if sink := jobd.ProgressSink(ctx); sink != nil {
		sink(jobd.ItemProgress{Cycles: 1, Done: 1, Total: 2})
	}
	select {
	case <-time.After(time.Millisecond):
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	return spec, false, nil
}

func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	rn := &fakeRunner{seen: map[string]bool{}}
	s, err := jobd.NewServer(jobd.Options{
		Runner:           rn.run,
		Workers:          4,
		QueueSize:        -1,
		Logger:           slog.New(slog.NewTextHandler(io.Discard, nil)),
		ProgressInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Close()
		ts.Close()
	})
	return ts
}

// TestRunEndToEnd drives the whole CLI — main run, skew curve, QPS
// sweep — against an in-process jobd server and checks the metrics
// file it writes has the benchdiff-comparable shape.
func TestRunEndToEnd(t *testing.T) {
	ts := startServer(t)
	out := filepath.Join(t.TempDir(), "BENCH_load.json")

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", ts.URL,
		"-qps", "400", "-ops", "80", "-keys", "25",
		"-dist", "zipfian", "-theta", "0.9",
		"-skews", "0.2,0.95", "-skew-ops", "80",
		"-sweep", "200,400",
		"-sse-every", "4",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics file is not JSON: %v", err)
	}
	for _, key := range []string{
		"target_qps", "achieved_qps", "ops", "ok", "rejected", "errors",
		"submit_p50_ms", "submit_p99_ms", "submit_p999_ms",
		"service_p50_ms", "service_p99_ms",
		"sse_first_progress_p50_ms", "sse_samples",
		"cache_hit_rate", "cache_hits", "cache_misses",
		"saturation_qps",
	} {
		if _, ok := m[key].(float64); !ok {
			t.Errorf("metric %q missing or not a number: %v", key, m[key])
		}
	}
	for _, key := range []string{"benchmark", "model_version", "dist"} {
		if s, ok := m[key].(string); !ok || s == "" {
			t.Errorf("metadata %q missing or empty: %v", key, m[key])
		}
	}
	if got := m["ops"].(float64); got != 80 {
		t.Errorf("ops = %v, want 80", got)
	}
	if got := m["ok"].(float64); got != 80 {
		t.Errorf("ok = %v, want 80 (stderr: %s)", got, stderr.String())
	}
	if curve, ok := m["skew_curve"].([]any); !ok || len(curve) != 2 {
		t.Errorf("skew_curve missing or wrong length: %v", m["skew_curve"])
	}
	if steps, ok := m["qps_steps"].([]any); !ok || len(steps) != 2 {
		t.Errorf("qps_steps missing or wrong length: %v", m["qps_steps"])
	}
}

// TestRunBadFlags pins usage errors to exit code 2 and runtime errors
// (unreachable server) to exit code 1.
func TestRunBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-qps", "not-a-number"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag value: exit %d, want 2", code)
	}
	if code := run([]string{"-ops", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("zero ops: exit %d, want 2", code)
	}
	if code := run([]string{"-dist", "nope", "-addr", startServer(t).URL}, &stdout, &stderr); code != 1 {
		t.Errorf("unknown dist: exit %d, want 1", code)
	}
	if code := run([]string{"-addr", "127.0.0.1:1", "-ops", "1"}, &stdout, &stderr); code != 1 {
		t.Errorf("unreachable server: exit %d, want 1", code)
	}
}
