// Command gpuwalkbench load-tests a running gpuwalkd with an
// open-loop, coordinated-omission-safe workload (see internal/loadgen
// and docs/LOADTEST.md). Each operation POSTs a small simulation spec
// drawn from a fixed population by a YCSB-style key generator, so key
// skew maps directly onto result-cache locality; latency is measured
// against each op's *intended* start time, which is what keeps queue
// stalls from being silently dropped from the tail.
//
//	gpuwalkd -addr :8077 &
//	gpuwalkbench -addr http://127.0.0.1:8077 -qps 200 -ops 2000 -dist zipfian -theta 0.99
//
// Besides the main run it can measure a cache-locality curve across
// zipfian skews (-skews) and a saturation sweep across QPS steps
// (-sweep), and writes everything as a flat-metric JSON file
// (BENCH_load.json) that cmd/benchdiff can compare against a committed
// baseline.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"gpuwalk"
	"gpuwalk/internal/atomicio"
	"gpuwalk/internal/cluster"
	"gpuwalk/internal/jobd"
	"gpuwalk/internal/loadgen"
	"gpuwalk/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// benchFlags is the parsed command line.
type benchFlags struct {
	addr    string
	qps     float64
	ops     int
	keys    int
	dist    string
	theta   float64
	hotFrac float64
	hotOp   float64
	expMean float64
	seed    uint64
	maxOut  int
	sseEach int

	workload   string
	scale      float64
	wavefronts int
	instrs     int

	skews   string
	skewOps int
	sweep   string

	waitTimeout time.Duration
	out         string
	retries     int
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gpuwalkbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var f benchFlags
	fs.StringVar(&f.addr, "addr", "http://127.0.0.1:8077", "gpuwalkd base URL (scheme optional)")
	fs.Float64Var(&f.qps, "qps", 200, "target submissions per second (open loop)")
	fs.IntVar(&f.ops, "ops", 1000, "operations in the main run")
	fs.IntVar(&f.keys, "keys", 100, "distinct specs in the population")
	fs.StringVar(&f.dist, "dist", "zipfian", "key distribution: zipfian, uniform, hotspot or exponential")
	fs.Float64Var(&f.theta, "theta", 0.99, "zipfian skew, in (0,1)")
	fs.Float64Var(&f.hotFrac, "hot-frac", 0.1, "hotspot: fraction of keys that are hot")
	fs.Float64Var(&f.hotOp, "hot-op-frac", 0.8, "hotspot: fraction of ops hitting the hot set")
	fs.Uint64Var(&f.seed, "seed", 1, "PRNG seed; same seed, same key sequence")
	fs.IntVar(&f.maxOut, "max-outstanding", 512, "max concurrent in-flight submissions")
	fs.IntVar(&f.sseEach, "sse-every", 10, "sample SSE time-to-first-progress on every Nth op (0 = off)")
	fs.Float64Var(&f.expMean, "exp-mean", 10, "exponential: mean key rank")
	fs.StringVar(&f.workload, "workload", "MVT", "simulated workload abbreviation in every spec")
	fs.Float64Var(&f.scale, "scale", 0.02, "spec footprint scale (tiny keeps per-job sim cheap)")
	fs.IntVar(&f.wavefronts, "wavefronts", 2, "spec wavefronts per CU")
	fs.IntVar(&f.instrs, "instrs", 6, "spec instructions per wavefront")
	fs.StringVar(&f.skews, "skews", "0.2,0.6,0.99", "comma-separated zipfian thetas for the cache-locality curve ('' = skip)")
	fs.IntVar(&f.skewOps, "skew-ops", 0, "ops per skew point (0 = same as -ops)")
	fs.StringVar(&f.sweep, "sweep", "", "comma-separated QPS steps for the saturation sweep ('' = skip)")
	fs.DurationVar(&f.waitTimeout, "wait-timeout", 2*time.Minute, "per-phase deadline (run + drain)")
	fs.StringVar(&f.out, "out", "BENCH_load.json", "metrics JSON output path ('' = don't write)")
	fs.IntVar(&f.retries, "retry", 1, "attempts per request incl. the first; >1 absorbs cluster failover 502s but masks rejections, so the default measures them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if f.qps <= 0 || f.ops <= 0 || f.keys <= 0 {
		fmt.Fprintln(stderr, "gpuwalkbench: -qps, -ops and -keys must be positive")
		return 2
	}
	if f.skewOps <= 0 {
		f.skewOps = f.ops
	}
	if !strings.Contains(f.addr, "://") {
		f.addr = "http://" + f.addr
	}

	client := &jobd.Client{BaseURL: f.addr}
	if f.retries > 1 {
		client.Retry = &jobd.RetryPolicy{MaxAttempts: f.retries}
	}
	if err := checkHealth(client, f.addr); err != nil {
		fmt.Fprintf(stderr, "gpuwalkbench: %v\n", err)
		return 1
	}
	reportCluster(stdout, f.addr)

	b := &bench{f: f, client: client, stdout: stdout}
	if err := b.runAll(); err != nil {
		fmt.Fprintf(stderr, "gpuwalkbench: %v\n", err)
		return 1
	}

	if f.out != "" {
		metrics := b.metrics()
		err := atomicio.WriteFile(f.out, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(metrics)
		})
		if err != nil {
			fmt.Fprintf(stderr, "gpuwalkbench: writing %s: %v\n", f.out, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s\n", f.out)
	}
	return 0
}

func checkHealth(c *jobd.Client, addr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(addr, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return fmt.Errorf("server unreachable at %s: %w", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server at %s is not healthy: %s", addr, resp.Status)
	}
	return nil
}

// reportCluster prints the target's cluster topology when the address
// is a gateway (a /v1/cluster endpoint answers). Standalone daemons
// have no such endpoint; silence there is the expected outcome, not an
// error, so the probe failure is swallowed.
func reportCluster(stdout io.Writer, addr string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	st, err := cluster.FetchStatus(ctx, nil, addr)
	if err != nil {
		return
	}
	fmt.Fprintf(stdout, "cluster gateway: %d/%d nodes healthy (%d vnodes, %d ring rebuilds)\n",
		st.Healthy, len(st.Members), st.VNodes, st.RingRebuilds)
	for _, n := range st.Members {
		state := "up"
		if !n.Healthy {
			state = "down"
		}
		fmt.Fprintf(stdout, "  node %s: %s, owns %.1f%% of the key space\n",
			n.Node, state, n.OwnedFraction*100)
	}
}

// bench accumulates each phase's measurements.
type bench struct {
	f      benchFlags
	client *jobd.Client
	stdout io.Writer

	// salt makes each sub-run's spec population disjoint from every
	// other's, so each phase measures a cold cache warming under its own
	// key distribution rather than inheriting earlier phases' entries.
	salt uint64

	main     outcome
	skewPts  []skewPoint
	sweepPts []sweepPoint
}

type outcome struct {
	rep *loadgen.Report
	fin loadgen.TargetStats
}

type skewPoint struct {
	Theta        float64 `json:"theta"`
	Ops          int     `json:"ops"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	P99Ms        float64 `json:"submit_p99_ms"`
	AchievedQPS  float64 `json:"achieved_qps"`
}

type sweepPoint struct {
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Rejected    int     `json:"rejected"`
	P99Ms       float64 `json:"submit_p99_ms"`
}

func (b *bench) runAll() error {
	kg, err := b.keygen(b.f.dist, b.f.theta)
	if err != nil {
		return err
	}
	fmt.Fprintf(b.stdout, "main run: dist=%s qps=%g ops=%d keys=%d\n", b.f.dist, b.f.qps, b.f.ops, b.f.keys)
	b.main, err = b.runOnce(kg, b.f.qps, b.f.ops)
	if err != nil {
		return err
	}
	b.report("main", b.main)

	if b.f.skews != "" {
		thetas, err := parseFloats(b.f.skews)
		if err != nil {
			return fmt.Errorf("bad -skews: %w", err)
		}
		for _, th := range thetas {
			kg, err := b.keygen("zipfian", th)
			if err != nil {
				return err
			}
			o, err := b.runOnce(kg, b.f.qps, b.f.skewOps)
			if err != nil {
				return fmt.Errorf("skew theta=%g: %w", th, err)
			}
			b.skewPts = append(b.skewPts, skewPoint{
				Theta:        th,
				Ops:          o.rep.Ops,
				CacheHitRate: o.fin.CacheHitRate,
				P99Ms:        o.rep.Response.P99Ms,
				AchievedQPS:  o.rep.AchievedQPS,
			})
			fmt.Fprintf(b.stdout, "skew theta=%.2f: cache hit rate %.3f, submit p99 %.2fms\n",
				th, o.fin.CacheHitRate, o.rep.Response.P99Ms)
		}
	}

	if b.f.sweep != "" {
		steps, err := parseFloats(b.f.sweep)
		if err != nil {
			return fmt.Errorf("bad -sweep: %w", err)
		}
		for _, q := range steps {
			kg, err := b.keygen(b.f.dist, b.f.theta)
			if err != nil {
				return err
			}
			o, err := b.runOnce(kg, q, b.f.skewOps)
			if err != nil {
				return fmt.Errorf("sweep qps=%g: %w", q, err)
			}
			b.sweepPts = append(b.sweepPts, sweepPoint{
				TargetQPS:   q,
				AchievedQPS: o.rep.AchievedQPS,
				Rejected:    o.rep.Rejected,
				P99Ms:       o.rep.Response.P99Ms,
			})
			fmt.Fprintf(b.stdout, "sweep qps=%g: achieved %.1f, rejected %d, submit p99 %.2fms\n",
				q, o.rep.AchievedQPS, o.rep.Rejected, o.rep.Response.P99Ms)
		}
	}
	return nil
}

// keygen builds a fresh generator; each call reseeds so sub-runs are
// independent of how many draws earlier phases consumed.
func (b *bench) keygen(dist string, theta float64) (loadgen.KeyGen, error) {
	r := xrand.New(b.f.seed)
	n := uint64(b.f.keys)
	switch dist {
	case "uniform":
		return loadgen.NewUniform(r, n), nil
	case "zipfian":
		return loadgen.NewZipfian(r, n, theta)
	case "hotspot":
		return loadgen.NewHotspot(r, n, b.f.hotFrac, b.f.hotOp)
	case "exponential":
		return loadgen.NewExponential(r, n, b.f.expMean)
	default:
		return nil, fmt.Errorf("unknown -dist %q (want zipfian, uniform, hotspot or exponential)", dist)
	}
}

// runOnce drives one harness run against a fresh spec population and
// waits for every accepted job to finish.
func (b *bench) runOnce(kg loadgen.KeyGen, qps float64, ops int) (outcome, error) {
	b.salt++
	specs, err := buildSpecs(b.f, b.salt)
	if err != nil {
		return outcome{}, err
	}
	tgt := loadgen.NewJobdTarget(b.client, specs)
	tgt.SSEEvery = b.f.sseEach

	ctx, cancel := context.WithTimeout(context.Background(), b.f.waitTimeout)
	defer cancel()
	rep, err := loadgen.Run(ctx, tgt, loadgen.Options{
		QPS:            qps,
		Ops:            ops,
		Keys:           kg,
		MaxOutstanding: b.f.maxOut,
	})
	if err != nil {
		return outcome{}, err
	}
	fin, err := tgt.Finish(ctx)
	if err != nil {
		return outcome{}, fmt.Errorf("waiting for jobs to drain: %w", err)
	}
	return outcome{rep: rep, fin: fin}, nil
}

// buildSpecs makes the population of distinct simulation specs. The
// spec is a partial gpuwalk.Config: gpuwalkd merges it over
// DefaultConfig, and the Seed (which folds in both the key index and
// the sub-run salt) varies the ConfigHash so every key is its own
// cache entry.
func buildSpecs(f benchFlags, salt uint64) ([][]byte, error) {
	type gen struct {
		Scale              float64
		WavefrontsPerCU    int
		InstrsPerWavefront int
	}
	type spec struct {
		Workload string
		Seed     uint64
		Gen      gen
	}
	specs := make([][]byte, f.keys)
	for k := range specs {
		b, err := json.Marshal(spec{
			Workload: f.workload,
			Seed:     salt*1_000_000 + uint64(k),
			Gen: gen{
				Scale:              f.scale,
				WavefrontsPerCU:    f.wavefronts,
				InstrsPerWavefront: f.instrs,
			},
		})
		if err != nil {
			return nil, err
		}
		specs[k] = b
	}
	return specs, nil
}

func (b *bench) report(name string, o outcome) {
	rep, fin := o.rep, o.fin
	fmt.Fprintf(b.stdout,
		"%s: %d ops in %.2fs (%.1f/s achieved of %g target), %d ok, %d rejected, %d errors\n",
		name, rep.Ops, rep.ElapsedSeconds, rep.AchievedQPS, rep.TargetQPS, rep.OK, rep.Rejected, rep.Errors)
	fmt.Fprintf(b.stdout,
		"  submit (from intended start): p50 %.2fms  p99 %.2fms  p99.9 %.2fms  max %.2fms\n",
		rep.Response.P50Ms, rep.Response.P99Ms, rep.Response.P999Ms, rep.Response.MaxMs)
	fmt.Fprintf(b.stdout,
		"  submit (from actual send):    p50 %.2fms  p99 %.2fms\n",
		rep.Service.P50Ms, rep.Service.P99Ms)
	fmt.Fprintf(b.stdout,
		"  jobs: %d done, %d failed, %d cancelled, %d evicted; cache hit rate %.3f (%d/%d items)\n",
		fin.Done, fin.Failed, fin.Cancelled, fin.Evicted, fin.CacheHitRate, fin.CacheHits, fin.ItemsDone)
	if fin.SSESampled > 0 {
		fmt.Fprintf(b.stdout,
			"  sse first progress: p50 %.2fms  p99 %.2fms (%d sampled, %d without progress, %d errors)\n",
			fin.FirstProgress.P50Ms, fin.FirstProgress.P99Ms, fin.SSESampled, fin.SSENoProgress, fin.SSEErrors)
	}
}

// metrics flattens the measurements into the benchdiff shape: top-level
// float64 metrics plus string metadata; the curves ride along as nested
// arrays benchdiff ignores.
func (b *bench) metrics() map[string]any {
	rep, fin := b.main.rep, b.main.fin
	m := map[string]any{
		"benchmark":     "gpuwalkbench: open-loop load against gpuwalkd",
		"model_version": gpuwalk.SimVersion,
		"dist":          b.f.dist,

		"target_qps":   rep.TargetQPS,
		"achieved_qps": rep.AchievedQPS,
		"ops":          float64(rep.Ops),
		"ok":           float64(rep.OK),
		"rejected":     float64(rep.Rejected),
		"errors":       float64(rep.Errors),

		"submit_p50_ms":  rep.Response.P50Ms,
		"submit_p99_ms":  rep.Response.P99Ms,
		"submit_p999_ms": rep.Response.P999Ms,
		"submit_mean_ms": rep.Response.MeanMs,
		"submit_max_ms":  rep.Response.MaxMs,
		"service_p50_ms": rep.Service.P50Ms,
		"service_p99_ms": rep.Service.P99Ms,

		"sse_first_progress_p50_ms": fin.FirstProgress.P50Ms,
		"sse_first_progress_p99_ms": fin.FirstProgress.P99Ms,
		"sse_samples":               float64(fin.SSESampled),

		"cache_hit_rate": fin.CacheHitRate,
		"cache_hits":     float64(fin.CacheHits),
		"cache_misses":   float64(fin.ItemsDone - fin.CacheHits),
	}
	if len(b.skewPts) > 0 {
		m["skew_curve"] = b.skewPts
	}
	if len(b.sweepPts) > 0 {
		m["qps_steps"] = b.sweepPts
		sat := 0.0
		for _, p := range b.sweepPts {
			if p.AchievedQPS > sat {
				sat = p.AchievedQPS
			}
		}
		m["saturation_qps"] = sat
	}
	return m
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no values in %q", s)
	}
	return out, nil
}
