// Command gpuwalksim runs one workload under one page-walk scheduler on
// the Table I baseline machine and prints a detailed statistics report.
//
// Usage:
//
//	gpuwalksim -workload MVT -sched simt-aware
//	gpuwalksim -workload XSB -sched fcfs -walkers 16 -l2tlb 1024
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gpuwalk"
	"gpuwalk/internal/report"
)

func main() {
	var (
		wl       = flag.String("workload", "MVT", "benchmark abbreviation (see -list)")
		sched    = flag.String("sched", "fcfs", "scheduler: fcfs, random, sjf, batch, simt-aware, cu-fair")
		list     = flag.Bool("list", false, "list workloads and schedulers, then exit")
		scale    = flag.Float64("scale", 0.125, "workload footprint scale vs Table II")
		wfs      = flag.Int("wavefronts", 0, "wavefronts per CU (0 = calibrated default)")
		instrs   = flag.Int("instrs", 0, "memory instructions per wavefront (0 = calibrated default)")
		walkers  = flag.Int("walkers", 8, "IOMMU page table walkers")
		l2tlb    = flag.Int("l2tlb", 512, "GPU shared L2 TLB entries")
		buffer   = flag.Int("buffer", 256, "IOMMU buffer entries")
		pagebits = flag.Uint("pagebits", 12, "page size: 12 (4KB) or 21 (2MB large pages)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of a report")
		csvOut   = flag.Bool("csv", false, "emit the headline metrics as CSV")
		confFile = flag.String("config", "", "load a JSON config file (flags below still override)")
		dumpConf = flag.String("dump-config", "", "write the effective config as JSON and exit")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		traceOut = flag.String("trace", "", "write a Chrome trace_event JSON of the run (load in chrome://tracing or Perfetto)")
		metsOut  = flag.String("metrics", "", "write a per-epoch metrics CSV time series")
		epoch    = flag.Uint64("epoch", 0, "metrics sampling period in cycles (0 = default 10000)")

		faultRate  = flag.Float64("fault-rate", 0, "inject page faults: probability a demand walk finds its PTE non-present (0 = off)")
		faultLat   = flag.Uint64("fault-lat", 0, "OS page-fault service latency in cycles (0 = default)")
		walkerKill = flag.Uint64("walker-kill", 0, "kill every Nth demand walk mid-walk, forcing re-dispatch (0 = off)")
		pwcCorrupt = flag.Float64("pwc-corrupt", 0, "probability a PWC probe returns a corrupted walk-length estimate (0 = off)")
		watchdog   = flag.Uint64("watchdog", 0, "fail with a queue dump if no progress for this many cycles (0 = off)")

		fastWalker  = flag.Bool("fast-walker", false, "latency-model walker tier: fixed per-PTE-read latency, no DRAM contention (~2x faster, approximate; see README for the validated error bound)")
		fastWalkLat = flag.Uint64("fast-walker-lat", 0, "per-PTE-read latency of the fast tier in cycles (0 = calibrated default)")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, g := range gpuwalk.Workloads() {
			kind := "regular"
			if g.Irregular {
				kind = "irregular"
			}
			fmt.Printf("  %-4s %-10s %-9s %s\n", g.Abbrev, g.Name, kind, g.Description)
		}
		fmt.Println("schedulers:")
		for _, k := range gpuwalk.SchedulerKinds() {
			fmt.Printf("  %s\n", k)
		}
		return
	}

	cfg := gpuwalk.DefaultConfig()
	if *confFile != "" {
		loaded, err := gpuwalk.LoadConfig(*confFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: %v\n", err)
			os.Exit(1)
		}
		cfg = loaded
	}
	cfg.Workload = *wl
	cfg.Scheduler = gpuwalk.SchedulerKind(*sched)
	cfg.Gen.Scale = *scale
	cfg.Gen.WavefrontsPerCU = *wfs
	cfg.Gen.InstrsPerWavefront = *instrs
	cfg.Gen.Seed = *seed
	cfg.Seed = *seed
	cfg.IOMMU.Walkers = *walkers
	cfg.IOMMU.BufferEntries = *buffer
	cfg.GPU.L2TLBEntries = *l2tlb
	cfg.GPU.PageBits = *pagebits
	cfg.FaultInject.Seed = *seed
	cfg.FaultInject.NonPresentRate = *faultRate
	cfg.FaultInject.WalkerKillPeriod = *walkerKill
	cfg.FaultInject.PWCCorruptRate = *pwcCorrupt
	cfg.IOMMU.Faults.ServiceLat = *faultLat
	cfg.IOMMU.WalkerLatencyModel = *fastWalker
	cfg.IOMMU.WalkerFixedLat = *fastWalkLat
	cfg.WatchdogInterval = *watchdog

	if *dumpConf != "" {
		if err := gpuwalk.SaveConfig(*dumpConf, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("config written to", *dumpConf)
		return
	}

	if *traceOut != "" {
		cfg.Obs.Tracer = gpuwalk.NewTracer()
	}
	if *metsOut != "" {
		cfg.Obs.Metrics = gpuwalk.NewMetrics()
		cfg.Obs.MetricsEpoch = *epoch
	}

	res, err := gpuwalk.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gpuwalksim: %v\n", err)
		os.Exit(1)
	}
	if cfg.FaultInject.Enabled() {
		fmt.Fprintf(os.Stderr, "fault injection: %d faults injected (%d serviced), %d walkers killed, %d probes corrupted, %d walk retries\n",
			res.Injected.FaultsInjected, res.IOMMU.FaultsServiced,
			res.Injected.WalkersKilled, res.Injected.ProbesCorrupted, res.IOMMU.WalkRetries)
	}
	if *traceOut != "" {
		if err := cfg.Obs.Tracer.WriteChromeFile(*traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: writing trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s (%d events)\n", *traceOut, cfg.Obs.Tracer.Len())
	}
	if *metsOut != "" {
		if err := cfg.Obs.Metrics.WriteCSVFile(*metsOut); err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: writing metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "metrics written to %s (%d samples)\n", *metsOut, cfg.Obs.Metrics.Rows())
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: encoding result: %v\n", err)
			os.Exit(1)
		}
	case *csvOut:
		if err := report.WriteCSV(os.Stdout, res); err != nil {
			fmt.Fprintf(os.Stderr, "gpuwalksim: writing CSV: %v\n", err)
			os.Exit(1)
		}
	default:
		report.Write(os.Stdout, res)
	}
}
