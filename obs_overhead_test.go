package gpuwalk_test

import (
	"context"
	"os"
	"testing"

	"gpuwalk/internal/core"
	"gpuwalk/internal/obs"
)

// benchTracer is nil in every real run. It is initialized through an
// environment lookup so the compiler cannot prove it nil and fold the
// hook guards away — the benchmark must measure the same load+branch
// the IOMMU pays per operation when tracing is disabled.
var benchTracer = func() *obs.Tracer {
	if os.Getenv("GPUWALK_BENCH_TRACER") != "" {
		return obs.NewTracer()
	}
	return nil
}()

// admitPickLoop mirrors the IOMMU scheduling hot path — indexed
// Admit then Pick once the lookahead window fills — optionally with the
// nil-tracer guards that instrumented builds place at the admit and
// dispatch sites.
func admitPickLoop(b *testing.B, hooked bool) {
	sched, err := core.New(core.KindSIMTAware, core.Options{AgingThreshold: 64})
	if err != nil {
		b.Fatal(err)
	}
	ix, ok := sched.(core.IndexedScheduler)
	if !ok {
		b.Fatalf("%s is not indexed", sched.Name())
	}
	var trk obs.Track
	reqs := make([]core.Request, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &reqs[i%len(reqs)]
		*r = core.Request{
			VPN:   uint64(i * 7 % 509),
			Instr: core.InstrID(i % 13),
			CU:    i % 8,
			Seq:   uint64(i),
			Est:   1 + i%4,
		}
		ix.Admit(r)
		if hooked {
			if tr := benchTracer; tr != nil {
				tr.Instant(trk, "iommu", "admit", obs.U64("seq", r.Seq))
			}
		}
		if ix.PendingLen() >= 64 {
			p := ix.Pick()
			if hooked {
				if tr := benchTracer; tr != nil {
					tr.Instant(trk, "iommu", "dispatch", obs.U64("seq", p.Seq))
				}
			}
		}
	}
}

func BenchmarkSchedAdmitPick(b *testing.B)          { admitPickLoop(b, false) }
func BenchmarkSchedAdmitPickNilTracer(b *testing.B) { admitPickLoop(b, true) }

// TestObsDisabledOverhead guards the nil-tracer contract: with tracing
// disabled the instrumented admit+pick path must stay within 2% of the
// hook-free path. Min-of-rounds filters scheduler jitter.
func TestObsDisabledOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing-sensitive; skipped under -race")
	}
	const rounds = 5
	measure := func(hooked bool) float64 {
		res := testing.Benchmark(func(b *testing.B) { admitPickLoop(b, hooked) })
		return float64(res.NsPerOp())
	}
	// Measure in adjacent base/hooked pairs and keep the best ratio:
	// machine-load swings (other test packages running in parallel)
	// hit both halves of a pair alike, and one quiet round is enough
	// for a clean reading — real per-op overhead would taint them all.
	var base, hooked, ratio float64
	for i := 0; i < rounds; i++ {
		b := measure(false)
		h := measure(true)
		if r := h / b; ratio == 0 || r < ratio {
			base, hooked, ratio = b, h, r
		}
	}
	t.Logf("base %.1f ns/op, nil-tracer %.1f ns/op, ratio %.4f", base, hooked, ratio)
	if ratio > 1.02 {
		t.Errorf("disabled-tracer overhead %.2f%% exceeds 2%% budget", (ratio-1)*100)
	}
}

// TestSpanHooksDisabledZeroAlloc extends the disabled-overhead contract
// to the request-tracing layer: the span hooks RunCached and the cache
// thread through every call (SpanRefFrom + Start + End, and the
// zero-ref ContextWithSpanRef) must allocate nothing when no trace is
// attached — the common case for every library caller.
func TestSpanHooksDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		c := obs.ContextWithSpanRef(ctx, obs.SpanRef{}) // zero ref: ctx unchanged
		ref := obs.SpanRefFrom(c)
		sp := ref.Start("cache.lookup")
		sp.End(obs.U64("hit", 0))
		ref.Start("sim.run").End()
	})
	if allocs != 0 {
		t.Errorf("disabled span hooks allocate %.1f/op, want 0", allocs)
	}
}
