package gpuwalk

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"gpuwalk/internal/atomicio"
)

// SaveConfig writes cfg as indented JSON to the named file, atomically
// (temp file + rename). Custom schedulers (Config.CustomScheduler) are
// code, not data, and are not serialized.
func SaveConfig(path string, cfg Config) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			return fmt.Errorf("gpuwalk: encoding config: %w", err)
		}
		return nil
	})
}

// LoadConfig reads a JSON config written by SaveConfig (or by hand).
// Fields absent from the file keep their zero values, so the usual
// pattern is to start from DefaultConfig, save it, edit the file, and
// load it back.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		return Config{}, fmt.Errorf("gpuwalk: decoding %s: %w", path, err)
	}
	return cfg, nil
}

// ParseConfig decodes one JSON config from r. Unknown fields are
// rejected, so typos in hand-edited files fail loudly instead of being
// silently ignored.
func ParseConfig(r io.Reader) (Config, error) {
	var cfg Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
