package gpuwalk_test

import (
	"encoding/json"
	"strings"
	"testing"

	"gpuwalk"
)

func mustHash(t *testing.T, cfg gpuwalk.Config) string {
	t.Helper()
	h, err := gpuwalk.ConfigHash(cfg)
	if err != nil {
		t.Fatalf("ConfigHash: %v", err)
	}
	return h
}

// TestConfigHashDefaultedFields: a config whose Gen fields are zero and
// one whose Gen carries the explicit defaults describe the same run, so
// they must hash identically.
func TestConfigHashDefaultedFields(t *testing.T) {
	implicit := gpuwalk.DefaultConfig()
	implicit.Gen = gpuwalk.GenConfig{} // all defaulted at Generate time

	explicit := gpuwalk.DefaultConfig()
	explicit.Gen = gpuwalk.GenConfig{}.WithDefaults()
	// Generate overrides these two from the GPU config regardless of
	// what the Gen carries; the hash must agree.
	explicit.Gen.CUs = explicit.GPU.CUs
	explicit.Gen.WavefrontWidth = explicit.GPU.WavefrontWidth

	if mustHash(t, implicit) != mustHash(t, explicit) {
		t.Fatal("defaulted and explicit-default configs hash differently")
	}
}

// TestConfigHashJSONFieldOrder: the same config serialized with fields
// in different orders must parse and hash identically.
func TestConfigHashJSONFieldOrder(t *testing.T) {
	a := `{"Workload":"MVT","Seed":7,"Scheduler":"fcfs"}`
	b := `{"Scheduler":"fcfs","Seed":7,"Workload":"MVT"}`
	parse := func(s string) gpuwalk.Config {
		base := gpuwalk.DefaultConfig()
		if err := json.Unmarshal([]byte(s), &base); err != nil {
			t.Fatal(err)
		}
		return base
	}
	if mustHash(t, parse(a)) != mustHash(t, parse(b)) {
		t.Fatal("JSON field order changed the hash")
	}
}

// TestConfigHashSemanticChanges: every semantically meaningful field
// change must change the hash.
func TestConfigHashSemanticChanges(t *testing.T) {
	base := mustHash(t, gpuwalk.DefaultConfig())
	cases := []struct {
		name   string
		mutate func(*gpuwalk.Config)
	}{
		{"workload", func(c *gpuwalk.Config) { c.Workload = "GEV" }},
		{"scheduler", func(c *gpuwalk.Config) { c.Scheduler = gpuwalk.SIMTAware }},
		{"seed", func(c *gpuwalk.Config) { c.Seed = 99 }},
		{"gen seed", func(c *gpuwalk.Config) { c.Gen.Seed = 99 }},
		{"gen scale", func(c *gpuwalk.Config) { c.Gen.Scale = 0.5 }},
		{"l2 tlb entries", func(c *gpuwalk.Config) { c.GPU.L2TLBEntries *= 2 }},
		{"walkers", func(c *gpuwalk.Config) { c.IOMMU.Walkers *= 2 }},
		{"buffer entries", func(c *gpuwalk.Config) { c.IOMMU.BufferEntries *= 2 }},
		{"sched aging", func(c *gpuwalk.Config) { c.SchedOpts.AgingThreshold = 12345 }},
		{"watchdog", func(c *gpuwalk.Config) { c.WatchdogInterval = 1 << 20 }},
		{"fault inject", func(c *gpuwalk.Config) { c.FaultInject.NonPresentRate = 0.5 }},
	}
	hashes := map[string]string{base: "base"}
	for _, tc := range cases {
		cfg := gpuwalk.DefaultConfig()
		tc.mutate(&cfg)
		h := mustHash(t, cfg)
		if prev, dup := hashes[h]; dup {
			t.Errorf("%s: hash collides with %s", tc.name, prev)
		}
		hashes[h] = tc.name
	}
}

// TestConfigHashIgnoresLiveHandles: observability handles are runtime
// objects, not run semantics; attaching them must not change the hash.
func TestConfigHashIgnoresLiveHandles(t *testing.T) {
	plain := gpuwalk.DefaultConfig()
	instrumented := gpuwalk.DefaultConfig()
	instrumented.Obs.Tracer = gpuwalk.NewTracer()
	instrumented.Obs.Metrics = gpuwalk.NewMetrics()
	instrumented.Obs.MetricsEpoch = 500
	if mustHash(t, plain) != mustHash(t, instrumented) {
		t.Fatal("observability handles changed the hash")
	}
}

func TestConfigHashRejectsCustomScheduler(t *testing.T) {
	cfg := gpuwalk.DefaultConfig()
	cfg.CustomScheduler = sentinelScheduler{}
	if _, err := gpuwalk.ConfigHash(cfg); err != gpuwalk.ErrUncacheable {
		t.Fatalf("err = %v, want ErrUncacheable", err)
	}
}

type sentinelScheduler struct{}

func (sentinelScheduler) Name() string                                             { return "sentinel" }
func (sentinelScheduler) OnArrival(r *gpuwalk.Request, pending []*gpuwalk.Request) {}
func (sentinelScheduler) Select(pending []*gpuwalk.Request) int                    { return 0 }

// FuzzConfigHash feeds arbitrary JSON through ParseConfig and checks
// the hash is a pure, stable function of the parsed config: hashing
// twice agrees, and hashing the config after a save/load round trip
// (which re-orders and re-formats the JSON) agrees too.
func FuzzConfigHash(f *testing.F) {
	f.Add(`{"Workload":"MVT"}`)
	f.Add(`{"Workload":"GEV","Seed":3,"IOMMU":{"Walkers":16}}`)
	f.Add(`{"Scheduler":"simt-aware","Gen":{"Scale":0.25}}`)
	f.Fuzz(func(t *testing.T, s string) {
		cfg, err := gpuwalk.ParseConfig(strings.NewReader(s))
		if err != nil {
			return // invalid JSON/unknown fields: not our concern here
		}
		h1, err := gpuwalk.ConfigHash(cfg)
		if err != nil {
			t.Fatalf("ConfigHash on parsed config: %v", err)
		}
		h2, err := gpuwalk.ConfigHash(cfg)
		if err != nil || h1 != h2 {
			t.Fatalf("hash not deterministic: %s vs %s (%v)", h1, h2, err)
		}
		// Round-trip through the JSON codec: field formatting must not
		// leak into the hash.
		b, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg2, err := gpuwalk.ParseConfig(strings.NewReader(string(b)))
		if err != nil {
			t.Fatalf("re-parse of marshaled config: %v", err)
		}
		h3, err := gpuwalk.ConfigHash(cfg2)
		if err != nil || h3 != h1 {
			t.Fatalf("hash changed across save/load: %s vs %s (%v)", h1, h3, err)
		}
	})
}
