// Package gpuwalk is a cycle-level simulator of GPU address translation
// that reproduces "Scheduling Page Table Walks for Irregular GPU
// Applications" (Shin et al., ISCA 2018).
//
// The simulated machine is an HSA-style system: a GPU (compute units,
// wavefronts, coalescer, per-CU L1 TLBs and a shared L2 TLB, two-level
// data caches) whose TLB misses are serviced by an IOMMU (two TLB
// levels, a pending-walk buffer, page walk caches, and a pool of
// hardware page table walkers) walking a real four-level x86-64 page
// table held in simulated DDR3 DRAM.
//
// The scheduling point the paper studies — which pending page-table walk
// a freed walker services next — is pluggable. Built-in policies are
// FCFS (baseline), Random (strawman), SJF-only and Batch-only
// (ablations), and the paper's full SIMT-aware scheduler.
//
// Quick start:
//
//	cfg := gpuwalk.DefaultConfig()
//	cfg.Workload = "MVT"
//	cfg.Scheduler = gpuwalk.SIMTAware
//	res, err := gpuwalk.Run(cfg)
//	// res.Cycles, res.StallCycles, res.PageWalks(), ...
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package gpuwalk

import (
	"context"
	"fmt"

	"gpuwalk/internal/core"
	"gpuwalk/internal/dram"
	"gpuwalk/internal/faultinject"
	"gpuwalk/internal/gpu"
	"gpuwalk/internal/iommu"
	"gpuwalk/internal/obs"
	"gpuwalk/internal/workload"
)

// Re-exported model types. The whole implementation lives under
// internal/; these aliases are the supported surface.
type (
	// GPUConfig configures the GPU model (Table I upper half).
	GPUConfig = gpu.Config
	// DRAMConfig configures the DDR3 model.
	DRAMConfig = dram.Config
	// IOMMUConfig configures the IOMMU (buffer, walkers, PWCs).
	IOMMUConfig = iommu.Config
	// GenConfig controls workload trace generation.
	GenConfig = workload.GenConfig
	// Trace is a generated or loaded workload trace.
	Trace = workload.Trace
	// WavefrontTrace is one wavefront's instruction stream in a Trace.
	WavefrontTrace = workload.WavefrontTrace
	// MemInstr is one SIMD memory instruction's per-lane addresses.
	MemInstr = workload.MemInstr
	// Result carries every metric a run produces.
	Result = gpu.Result
	// Scheduler is the page-walk scheduling interface; implement it to
	// plug in a custom policy (see examples/customsched).
	Scheduler = core.Scheduler
	// Request is one pending page-walk request as seen by a Scheduler.
	Request = core.Request
	// SchedulerKind names a built-in scheduling policy.
	SchedulerKind = core.Kind
	// SchedulerOptions tunes built-in policy construction.
	SchedulerOptions = core.Options
	// Workload describes one Table II benchmark generator.
	Workload = workload.Generator
	// Tracer records structured simulation events for Chrome
	// trace_event export (see docs/OBSERVABILITY.md).
	Tracer = obs.Tracer
	// Metrics is a registry of counters/gauges/histograms sampled per
	// epoch into a CSV time series.
	Metrics = obs.Registry
	// FaultInjectConfig configures deterministic fault injection
	// (non-present PTEs, walker kills, PWC probe corruption); see
	// docs/FAULTS.md.
	FaultInjectConfig = faultinject.Config
	// FaultConfig configures the IOMMU's OS page-fault service model
	// (queue bound, service slots, latency).
	FaultConfig = iommu.FaultConfig
	// InjectedStats counts the faults an injection-enabled run injected.
	InjectedStats = faultinject.Stats
	// Progress is a live snapshot of a running simulation's forward
	// motion (cycle, instructions done/total, walks), delivered through
	// ObsConfig.Progress. See docs/OBSERVABILITY.md §6.
	Progress = gpu.Progress
)

// NewTracer returns an empty event tracer. Pass it via Config.Obs to
// record a run; write the result with Tracer.WriteChromeFile.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry. Pass it via Config.Obs
// to sample a run; write the result with Metrics.WriteCSVFile.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// Built-in scheduling policies. CUFair is this repo's follow-on
// extension (cross-CU QoS on top of batching + SJF); the rest are the
// paper's policies.
const (
	FCFS      = core.KindFCFS
	Random    = core.KindRandom
	SJFOnly   = core.KindSJF
	BatchOnly = core.KindBatch
	SIMTAware = core.KindSIMTAware
	CUFair    = core.KindCUFair
)

// SchedulerKinds lists the built-in policies.
func SchedulerKinds() []SchedulerKind { return core.Kinds() }

// Workloads returns the twelve Table II benchmark generators.
func Workloads() []*Workload { return workload.Registry() }

// WorkloadNames returns the benchmark abbreviations (XSB, MVT, ...).
func WorkloadNames() []string { return workload.Names() }

// IrregularWorkloadNames returns the six irregular benchmarks.
func IrregularWorkloadNames() []string { return workload.IrregularNames() }

// WorkloadByName finds a benchmark generator by abbreviation.
func WorkloadByName(name string) (*Workload, error) { return workload.ByName(name) }

// Config is a complete run description.
type Config struct {
	GPU   GPUConfig
	DRAM  DRAMConfig
	IOMMU IOMMUConfig

	// Scheduler selects the page-walk scheduling policy.
	Scheduler SchedulerKind
	// SchedOpts tunes the policy (aging threshold, random seed).
	SchedOpts SchedulerOptions
	// CustomScheduler, when non-nil, overrides Scheduler with a
	// user-provided policy (see examples/customsched).
	CustomScheduler Scheduler

	// Workload is the benchmark abbreviation (see WorkloadNames).
	Workload string
	// Gen controls trace generation (scale, instruction counts, seed).
	Gen GenConfig

	// Seed randomizes OS frame placement.
	Seed uint64

	// FaultInject enables deterministic fault injection. The zero value
	// injects nothing and leaves the fault model detached, so fault-free
	// runs behave (and trace) exactly as without it.
	FaultInject FaultInjectConfig

	// WatchdogInterval arms a no-progress watchdog: if no instruction,
	// walk, or fault service completes across this many cycles while
	// work remains, the run fails with a diagnostic dump of every queue
	// instead of spinning forever. 0 disables.
	WatchdogInterval uint64

	// Obs holds runtime observability handles. Like CustomScheduler
	// they are live objects, not data, so they are never serialized.
	Obs ObsConfig `json:"-"`
}

// ObsConfig attaches observability to a run. Both fields are optional;
// a nil Tracer and nil Metrics cost the simulation one pointer check
// per hook site (see docs/MODEL.md).
type ObsConfig struct {
	// Tracer, when non-nil, records structured events from every model
	// layer for Chrome trace_event export.
	Tracer *Tracer
	// Metrics, when non-nil, is sampled every MetricsEpoch cycles (and
	// once at the end of the run) into a CSV time series.
	Metrics *Metrics
	// MetricsEpoch is the sampling period in cycles (0 uses
	// gpu.DefaultMetricsEpoch, 10000).
	MetricsEpoch uint64
	// Progress, when non-nil, receives periodic Progress snapshots on
	// the simulation goroutine: one baseline at cycle 0, one every
	// ProgressEvery cycles, and one final snapshot when the engine
	// stops. It must not block or mutate model state; publish across
	// goroutines via atomics. Leaving it nil costs nothing and keeps
	// the run byte-identical to an unhooked one.
	Progress func(Progress)
	// ProgressEvery is the publication period in cycles (0 uses
	// gpu.DefaultProgressEvery, 50000).
	ProgressEvery uint64
}

// DefaultConfig returns the paper's Table I baseline with the FCFS
// scheduler and the MVT workload at the default scaled footprint.
func DefaultConfig() Config {
	return Config{
		GPU:       gpu.DefaultConfig(),
		DRAM:      dram.DefaultConfig(),
		IOMMU:     iommu.DefaultConfig(),
		Scheduler: FCFS,
		Workload:  "MVT",
		Gen:       GenConfig{}.WithDefaults(),
	}
}

// Generate builds the workload trace cfg describes.
func Generate(cfg Config) (*Trace, error) {
	g, err := workload.ByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	gen := cfg.Gen
	gen.CUs = cfg.GPU.CUs
	gen.WavefrontWidth = cfg.GPU.WavefrontWidth
	return g.Generate(gen), nil
}

// Run generates the configured workload and simulates it to completion.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: when ctx is cancelled the
// simulation engine aborts promptly (within a few thousand events) and
// RunContext returns ctx's error instead of a Result. This is what
// makes a cancelled gpuwalkd HTTP request actually stop its simulation.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	tr, err := Generate(cfg)
	if err != nil {
		return Result{}, err
	}
	return RunTraceContext(ctx, cfg, tr)
}

// RunTrace simulates a pre-built trace under cfg (ignoring cfg.Workload
// and cfg.Gen). Use it to replay saved traces or hand-built ones.
func RunTrace(cfg Config, tr *Trace) (Result, error) {
	return RunTraceContext(context.Background(), cfg, tr)
}

// RunTraceContext is RunTrace with cancellation (see RunContext).
func RunTraceContext(ctx context.Context, cfg Config, tr *Trace) (Result, error) {
	sys, err := gpu.NewSystem(gpu.Params{
		GPU:              cfg.GPU,
		DRAM:             cfg.DRAM,
		IOMMU:            cfg.IOMMU,
		SchedKind:        cfg.Scheduler,
		SchedOpts:        cfg.SchedOpts,
		Scheduler:        cfg.CustomScheduler,
		Seed:             cfg.Seed,
		FaultInject:      cfg.FaultInject,
		WatchdogInterval: cfg.WatchdogInterval,
		Tracer:           cfg.Obs.Tracer,
		Metrics:          cfg.Obs.Metrics,
		MetricsEpoch:     cfg.Obs.MetricsEpoch,
		Progress:         cfg.Obs.Progress,
		ProgressEvery:    cfg.Obs.ProgressEvery,
	}, tr)
	if err != nil {
		return Result{}, err
	}
	return sys.RunContext(ctx)
}

// Speedup returns how much faster b is than a (a.Cycles / b.Cycles).
func Speedup(a, b Result) float64 {
	if b.Cycles == 0 {
		return 0
	}
	return float64(a.Cycles) / float64(b.Cycles)
}

// Compare runs the same configuration under two schedulers and returns
// both results plus the speedup of the second over the first. The same
// trace (and the same frame placement) is used for both runs.
func Compare(cfg Config, base, test SchedulerKind) (baseRes, testRes Result, speedup float64, err error) {
	tr, err := Generate(cfg)
	if err != nil {
		return Result{}, Result{}, 0, err
	}
	c := cfg
	c.Scheduler = base
	baseRes, err = RunTrace(c, tr)
	if err != nil {
		return Result{}, Result{}, 0, fmt.Errorf("base run: %w", err)
	}
	c.Scheduler = test
	testRes, err = RunTrace(c, tr)
	if err != nil {
		return Result{}, Result{}, 0, fmt.Errorf("test run: %w", err)
	}
	return baseRes, testRes, Speedup(baseRes, testRes), nil
}
