package gpuwalk_test

import (
	"testing"

	"gpuwalk"
	"gpuwalk/internal/gpu"
)

// runRecorded simulates cfg with the walk-schedule recorder on and
// returns the full dispatch log plus the run result.
func runRecorded(t *testing.T, cfg gpuwalk.Config, tr *gpuwalk.Trace, reference bool) (gpuwalk.Result, []string) {
	t.Helper()
	cfg.IOMMU.RecordSchedule = true
	cfg.IOMMU.RecordLimit = 1 << 20
	cfg.SchedOpts.Reference = reference
	sys, err := gpu.NewSystem(gpu.Params{
		GPU:       cfg.GPU,
		DRAM:      cfg.DRAM,
		IOMMU:     cfg.IOMMU,
		SchedKind: cfg.Scheduler,
		SchedOpts: cfg.SchedOpts,
		Seed:      cfg.Seed,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := sys.IOMMU().ScheduleLog()
	out := make([]string, 0, len(log))
	for _, w := range log {
		out = append(out, walkKey(w.Walker, uint64(w.Start), uint64(w.End), uint64(w.Instr), w.VPN))
	}
	return res, out
}

func walkKey(walker int, start, end, instr, vpn uint64) string {
	b := make([]byte, 0, 48)
	for _, v := range []uint64{uint64(walker), start, end, instr, vpn} {
		b = appendHex(b, v)
		b = append(b, ':')
	}
	return string(b)
}

func appendHex(b []byte, v uint64) []byte {
	const digits = "0123456789abcdef"
	if v == 0 {
		return append(b, '0')
	}
	var tmp [16]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = digits[v&0xf]
		v >>= 4
	}
	return append(b, tmp[i:]...)
}

// TestSystemDifferentialIndexedVsReference runs full simulations of
// several workloads under every built-in policy, once with the indexed
// pending buffer (the default) and once with the linear reference
// (SchedOpts.Reference), and asserts the walk dispatch schedules are
// byte-identical. The tiny buffer and walker pool force heavy overflow
// traffic, so the strict-FIFO admission path is exercised too.
func TestSystemDifferentialIndexedVsReference(t *testing.T) {
	workloads := []string{"MVT", "ATX", "GEV"}
	for _, wl := range workloads {
		for _, sk := range gpuwalk.SchedulerKinds() {
			cfg := microConfig()
			cfg.Workload = wl
			cfg.Scheduler = sk
			cfg.SchedOpts.Seed = 7
			cfg.SchedOpts.AgingThreshold = 32
			cfg.IOMMU.BufferEntries = 16
			cfg.IOMMU.Walkers = 2
			tr, err := gpuwalk.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			refRes, refLog := runRecorded(t, cfg, tr, true)
			ixRes, ixLog := runRecorded(t, cfg, tr, false)
			if len(refLog) == 0 {
				t.Fatalf("%s/%s: empty schedule log", wl, sk)
			}
			compareLogs(t, wl+"/"+string(sk), refLog, ixLog)
			if refRes.Cycles != ixRes.Cycles || refRes.StallCycles != ixRes.StallCycles {
				t.Errorf("%s/%s: cycles %d/%d vs reference %d/%d",
					wl, sk, ixRes.Cycles, ixRes.StallCycles, refRes.Cycles, refRes.StallCycles)
			}
		}
	}
}

// TestSystemDifferentialMergeOverflow repeats the differential check
// with same-VPN merging on and an even smaller buffer, the regime of
// the overflow-merge fix.
func TestSystemDifferentialMergeOverflow(t *testing.T) {
	for _, sk := range []gpuwalk.SchedulerKind{gpuwalk.FCFS, gpuwalk.SIMTAware, gpuwalk.CUFair} {
		cfg := microConfig()
		cfg.Workload = "SSP"
		cfg.Scheduler = sk
		cfg.SchedOpts.AgingThreshold = 8
		cfg.IOMMU.BufferEntries = 8
		cfg.IOMMU.Walkers = 2
		cfg.IOMMU.MergeSameVPN = true
		tr, err := gpuwalk.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refRes, refLog := runRecorded(t, cfg, tr, true)
		ixRes, ixLog := runRecorded(t, cfg, tr, false)
		if len(refLog) == 0 {
			t.Fatalf("%s: empty schedule log", sk)
		}
		compareLogs(t, "SSP/"+string(sk), refLog, ixLog)
		if refRes.Cycles != ixRes.Cycles {
			t.Errorf("%s: %d cycles vs reference %d", sk, ixRes.Cycles, refRes.Cycles)
		}
	}
}

func compareLogs(t *testing.T, label string, ref, ix []string) {
	t.Helper()
	if len(ref) != len(ix) {
		t.Errorf("%s: schedule length %d vs reference %d", label, len(ix), len(ref))
		return
	}
	for i := range ref {
		if ref[i] != ix[i] {
			t.Errorf("%s: schedules diverge at walk %d: indexed %s, reference %s",
				label, i, ix[i], ref[i])
			return
		}
	}
}
