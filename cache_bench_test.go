package gpuwalk_test

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"gpuwalk"
)

// fig13MiniGrid is a scaled-down Figure 13 sweep: the paper's L2 TLB
// and walker-count sensitivity axes on two irregular workloads under
// both schedulers, small enough to simulate in seconds.
func fig13MiniGrid() []gpuwalk.Config {
	var grid []gpuwalk.Config
	for _, wl := range []string{"MVT", "ATX"} {
		for _, sched := range []gpuwalk.SchedulerKind{gpuwalk.FCFS, gpuwalk.SIMTAware} {
			// Sweep values deliberately avoid the defaults (512-entry
			// L2 TLB, 8 walkers): a point equal to the baseline would
			// content-address to the same key as another axis's point
			// and turn into a cache hit mid-cold-sweep.
			for _, l2 := range []int{256, 1024} {
				cfg := benchBaseConfig(wl, sched)
				cfg.GPU.L2TLBEntries = l2
				grid = append(grid, cfg)
			}
			for _, walkers := range []int{4, 16} {
				cfg := benchBaseConfig(wl, sched)
				cfg.IOMMU.Walkers = walkers
				grid = append(grid, cfg)
			}
		}
	}
	return grid
}

func benchBaseConfig(wl string, sched gpuwalk.SchedulerKind) gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = wl
	cfg.Scheduler = sched
	cfg.Gen.Scale = 0.02
	cfg.Gen.WavefrontsPerCU = 2
	cfg.Gen.InstrsPerWavefront = 8
	cfg.Seed = 7
	return cfg
}

// sweep runs every grid point through the cache and returns the wall
// time and how many points were served from disk.
func sweep(t testing.TB, ctx context.Context, dir string, grid []gpuwalk.Config) (time.Duration, int) {
	cache, err := gpuwalk.OpenResultCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	hits := 0
	start := time.Now()
	for _, cfg := range grid {
		_, hit, err := gpuwalk.RunCached(ctx, cache, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			hits++
		}
	}
	return time.Since(start), hits
}

// TestBenchCacheColdWarm measures the result cache's payoff — the wall
// time of a mini Figure 13 sweep cold (every point simulated) versus
// warm (every point served from disk) — and records it in
// BENCH_cache.json, the repo's perf-trajectory file for the cache.
func TestBenchCacheColdWarm(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing benchmark; skipped under -race")
	}
	dir := t.TempDir()
	ctx := context.Background()
	grid := fig13MiniGrid()

	cold, hits := sweep(t, ctx, dir, grid)
	if hits != 0 {
		t.Fatalf("cold sweep had %d cache hits, want 0", hits)
	}
	warm, hits := sweep(t, ctx, dir, grid)
	if hits != len(grid) {
		t.Fatalf("warm sweep had %d cache hits, want %d", hits, len(grid))
	}
	speedup := cold.Seconds() / warm.Seconds()
	t.Logf("cold %.3fs, warm %.3fs, speedup %.0fx over %d runs", cold.Seconds(), warm.Seconds(), speedup, len(grid))
	if speedup < 2 {
		t.Errorf("warm sweep only %.1fx faster than cold; the cache is not paying for itself", speedup)
	}

	out, err := json.MarshalIndent(map[string]any{
		"benchmark":     "fig13-mini cold vs warm sweep",
		"model_version": gpuwalk.SimVersion,
		"runs":          len(grid),
		"cold_seconds":  round3(cold.Seconds()),
		"warm_seconds":  round3(warm.Seconds()),
		"speedup":       round3(speedup),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// BENCH_CACHE_OUT redirects the measurement file, so CI can write a
	// fresh one next to the committed BENCH_cache.json and diff the two
	// with cmd/benchdiff instead of overwriting the baseline.
	outPath := os.Getenv("BENCH_CACHE_OUT")
	if outPath == "" {
		outPath = "BENCH_cache.json"
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}

// BenchmarkRunCachedWarm measures the per-run cost of a cache hit:
// hashing the config, reading the object, digest-checking it, and
// decoding the result.
func BenchmarkRunCachedWarm(b *testing.B) {
	cache, err := gpuwalk.OpenResultCache(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cache.Close()
	cfg := benchBaseConfig("MVT", gpuwalk.FCFS)
	ctx := context.Background()
	if _, _, err := gpuwalk.RunCached(ctx, cache, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := gpuwalk.RunCached(ctx, cache, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !hit {
			b.Fatal("expected a cache hit")
		}
	}
}
