package gpuwalk_test

import (
	"encoding/json"
	"strings"
	"testing"

	"gpuwalk"
)

// FuzzConfigParse checks that ParseConfig never panics on arbitrary
// input, and that anything it accepts re-encodes and re-parses to the
// same configuration (the SaveConfig/LoadConfig round trip).
func FuzzConfigParse(f *testing.F) {
	// Seed corpus: the default config as SaveConfig writes it, plus
	// boundary shapes.
	def, err := json.Marshal(gpuwalk.DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(def))
	f.Add(`{}`)
	f.Add(`{"Workload":"MVT","Scheduler":"simt-aware"}`)
	f.Add(`{"Workload":`)
	f.Add(`{"NoSuchField":1}`)
	f.Add(`null`)
	f.Add(``)
	f.Fuzz(func(t *testing.T, input string) {
		cfg, err := gpuwalk.ParseConfig(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		blob, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("accepted config does not re-encode: %v", err)
		}
		again, err := gpuwalk.ParseConfig(strings.NewReader(string(blob)))
		if err != nil {
			t.Fatalf("re-encoded config does not re-parse: %v\n%s", err, blob)
		}
		blob2, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(blob) != string(blob2) {
			t.Fatalf("config drifted through parse/encode cycle:\n%s\n%s", blob, blob2)
		}
	})
}
