package gpuwalk_test

import (
	"context"
	"encoding/json"
	"testing"

	"gpuwalk"
)

// tinyCachedConfig is a fast config for cache tests: small machine,
// small footprint, still enough translation traffic to populate every
// stat the Result carries.
func tinyCachedConfig() gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "MVT"
	cfg.GPU.CUs = 2
	cfg.GPU.WavefrontsPerCU = 2
	cfg.Gen = gpuwalk.GenConfig{Scale: 0.02, WavefrontsPerCU: 2, InstrsPerWavefront: 6}
	cfg.Seed = 11
	return cfg
}

// TestRunCachedDifferential is the cache-correctness acceptance test:
// the result served from the cache (hit path) must be byte-identical,
// once serialized, to a fresh simulation of the same config (miss
// path), and the hit must not re-simulate.
func TestRunCachedDifferential(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCachedConfig()

	missRes, hit, err := gpuwalk.RunCached(context.Background(), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run reported a cache hit")
	}
	hitRes, hit, err := gpuwalk.RunCached(context.Background(), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second identical run missed the cache")
	}
	freshRes, err := gpuwalk.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	enc := func(r gpuwalk.Result) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(missRes) != enc(freshRes) {
		t.Fatal("miss-path result differs from a fresh simulation")
	}
	if enc(hitRes) != enc(freshRes) {
		t.Fatal("cached (hit-path) result differs from a fresh simulation")
	}
	if st := cache.Stats(); st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 put and 1 hit", st)
	}
}

// TestRunCachedDistinguishesConfigs: different configs take different
// cache entries.
func TestRunCachedDistinguishesConfigs(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := tinyCachedConfig()
	b := tinyCachedConfig()
	b.Scheduler = gpuwalk.SIMTAware
	ra, hit, err := gpuwalk.RunCached(context.Background(), cache, a)
	if err != nil || hit {
		t.Fatalf("first: hit=%v err=%v", hit, err)
	}
	rb, hit, err := gpuwalk.RunCached(context.Background(), cache, b)
	if err != nil || hit {
		t.Fatalf("different config served from cache: hit=%v err=%v", hit, err)
	}
	if ra.Scheduler == rb.Scheduler {
		t.Fatal("results do not reflect their configs")
	}
}

// TestRunCachedCancelledMissesCleanly: a cancelled miss stores nothing.
func TestRunCachedCancelledMissesCleanly(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := gpuwalk.RunCached(ctx, cache, tinyCachedConfig()); err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if cache.Len() != 0 {
		t.Fatal("cancelled run left a cache entry")
	}
}
