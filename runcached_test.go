package gpuwalk_test

import (
	"context"
	"encoding/json"
	"testing"

	"gpuwalk"
	"gpuwalk/internal/obs"
)

// tinyCachedConfig is a fast config for cache tests: small machine,
// small footprint, still enough translation traffic to populate every
// stat the Result carries.
func tinyCachedConfig() gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "MVT"
	cfg.GPU.CUs = 2
	cfg.GPU.WavefrontsPerCU = 2
	cfg.Gen = gpuwalk.GenConfig{Scale: 0.02, WavefrontsPerCU: 2, InstrsPerWavefront: 6}
	cfg.Seed = 11
	return cfg
}

// TestRunCachedDifferential is the cache-correctness acceptance test:
// the result served from the cache (hit path) must be byte-identical,
// once serialized, to a fresh simulation of the same config (miss
// path), and the hit must not re-simulate.
func TestRunCachedDifferential(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyCachedConfig()

	missRes, hit, err := gpuwalk.RunCached(context.Background(), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first run reported a cache hit")
	}
	hitRes, hit, err := gpuwalk.RunCached(context.Background(), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second identical run missed the cache")
	}
	freshRes, err := gpuwalk.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	enc := func(r gpuwalk.Result) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(missRes) != enc(freshRes) {
		t.Fatal("miss-path result differs from a fresh simulation")
	}
	if enc(hitRes) != enc(freshRes) {
		t.Fatal("cached (hit-path) result differs from a fresh simulation")
	}
	if st := cache.Stats(); st.Puts != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want exactly 1 put and 1 hit", st)
	}
}

// TestRunCachedDistinguishesConfigs: different configs take different
// cache entries.
func TestRunCachedDistinguishesConfigs(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := tinyCachedConfig()
	b := tinyCachedConfig()
	b.Scheduler = gpuwalk.SIMTAware
	ra, hit, err := gpuwalk.RunCached(context.Background(), cache, a)
	if err != nil || hit {
		t.Fatalf("first: hit=%v err=%v", hit, err)
	}
	rb, hit, err := gpuwalk.RunCached(context.Background(), cache, b)
	if err != nil || hit {
		t.Fatalf("different config served from cache: hit=%v err=%v", hit, err)
	}
	if ra.Scheduler == rb.Scheduler {
		t.Fatal("results do not reflect their configs")
	}
}

// TestRunCachedTracedByteIdentity: attaching a request trace must not
// perturb the simulation — a traced run's result is byte-identical to
// an untraced run of the same config — while the trace itself records
// the lookup, simulation and store stages, and a sim tracer attached to
// the same run is stamped with the trace ID.
func TestRunCachedTracedByteIdentity(t *testing.T) {
	cfg := tinyCachedConfig()
	plain, err := gpuwalk.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := obs.NewSpanBuf("test", obs.NewTraceID(), 0)
	root := buf.StartSpan("root", obs.SpanID{})
	ctx := obs.ContextWithSpanRef(context.Background(),
		obs.SpanRef{Buf: buf, Span: root.ID()})
	tracedCfg := cfg
	tracedCfg.Obs.Tracer = gpuwalk.NewTracer()

	traced, hit, err := gpuwalk.RunCached(ctx, cache, tracedCfg)
	if err != nil || hit {
		t.Fatalf("traced run: hit=%v err=%v", hit, err)
	}
	enc := func(r gpuwalk.Result) string {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if enc(traced) != enc(plain) {
		t.Fatal("traced run's result differs from an untraced run")
	}

	got := map[string]bool{}
	for _, s := range buf.Spans() {
		got[s.Name] = true
	}
	for _, want := range []string{"cache.lookup", "sim.run", "cache.put"} {
		if !got[want] {
			t.Fatalf("span %q not recorded; got %v", want, got)
		}
	}
	if v := tracedCfg.Obs.Tracer.Meta("trace_id"); v != buf.Trace().String() {
		t.Fatalf("sim tracer meta trace_id = %q, want %s", v, buf.Trace())
	}

	// The cache hit path is traced too, and stays byte-identical.
	hitRes, hit, err := gpuwalk.RunCached(ctx, cache, cfg)
	if err != nil || !hit {
		t.Fatalf("hit run: hit=%v err=%v", hit, err)
	}
	if enc(hitRes) != enc(plain) {
		t.Fatal("traced hit-path result differs")
	}
}

// TestRunCachedCancelledMissesCleanly: a cancelled miss stores nothing.
func TestRunCachedCancelledMissesCleanly(t *testing.T) {
	cache, err := gpuwalk.OpenResultCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := gpuwalk.RunCached(ctx, cache, tinyCachedConfig()); err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if cache.Len() != 0 {
		t.Fatal("cancelled run left a cache entry")
	}
}
