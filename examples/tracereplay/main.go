// Tracereplay: generate a workload trace, archive it to disk, load it
// back and replay it — showing that runs are bit-identical across the
// save/load roundtrip (the foundation for sharing reproducible inputs).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gpuwalk"
	"gpuwalk/internal/traceio"
)

func main() {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "XSB"
	cfg.Gen.WavefrontsPerCU = 2
	cfg.Gen.InstrsPerWavefront = 8

	tr, err := gpuwalk.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "gpuwalk")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "xsb.trace")

	if err := traceio.SaveFile(path, tr); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("saved %s: %d wavefronts, %d instructions, %d bytes on disk\n",
		path, len(tr.Wavefronts), tr.Instructions(), info.Size())

	loaded, err := traceio.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}

	orig, err := gpuwalk.RunTrace(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	replay, err := gpuwalk.RunTrace(cfg, loaded)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("original run: %d cycles, %d walks\n", orig.Cycles, orig.PageWalks())
	fmt.Printf("replayed run: %d cycles, %d walks\n", replay.Cycles, replay.PageWalks())
	if orig.Cycles == replay.Cycles && orig.PageWalks() == replay.PageWalks() {
		fmt.Println("replay is bit-identical ✓")
	} else {
		fmt.Println("MISMATCH — replay diverged!")
		os.Exit(1)
	}
}
