// Sensitivity: sweep the machine parameters the paper studies in
// Figures 13 and 14 — GPU L2 TLB capacity, page-table-walker count and
// IOMMU buffer size — for one workload, and print how the SIMT-aware
// scheduler's advantage over FCFS moves.
package main

import (
	"fmt"
	"log"

	"gpuwalk"
)

func main() {
	const workload = "GEV"

	fmt.Println("workload:", workload)
	fmt.Println("\nL2 TLB entries sweep (8 walkers, 256-entry buffer):")
	for _, entries := range []int{256, 512, 1024, 2048} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = workload
		cfg.GPU.L2TLBEntries = entries
		report(fmt.Sprintf("%5d entries", entries), cfg)
	}

	fmt.Println("\npage table walker sweep (512-entry L2 TLB):")
	for _, walkers := range []int{4, 8, 16, 32} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = workload
		cfg.IOMMU.Walkers = walkers
		report(fmt.Sprintf("%5d walkers", walkers), cfg)
	}

	fmt.Println("\nIOMMU buffer sweep (scheduler lookahead):")
	for _, buf := range []int{64, 128, 256, 512} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = workload
		cfg.IOMMU.BufferEntries = buf
		report(fmt.Sprintf("%5d buffer", buf), cfg)
	}
}

func report(label string, cfg gpuwalk.Config) {
	base, test, speedup, err := gpuwalk.Compare(cfg, gpuwalk.FCFS, gpuwalk.SIMTAware)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s: fcfs %9d cy, simt-aware %9d cy, speedup %.3fx\n",
		label, base.Cycles, test.Cycles, speedup)
}
