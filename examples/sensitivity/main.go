// Sensitivity: sweep the machine parameters the paper studies in
// Figures 13 and 14 — GPU L2 TLB capacity, page-table-walker count and
// IOMMU buffer size — for one workload, and print how the SIMT-aware
// scheduler's advantage over FCFS moves.
//
// Every run goes through the persistent result cache, so re-running
// the sweep (or extending it with more points) only simulates the
// configurations that have not been seen before. Ctrl-C mid-sweep is
// safe: completed points are on disk and the next run resumes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"gpuwalk"
)

func main() {
	var (
		workload = flag.String("workload", "GEV", "benchmark abbreviation")
		cacheDir = flag.String("cache", ".sensitivity-cache", "result cache directory (empty disables caching)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var cache *gpuwalk.ResultCache
	if *cacheDir != "" {
		var err error
		if cache, err = gpuwalk.OpenResultCache(*cacheDir, 0); err != nil {
			log.Fatal(err)
		}
		defer func() {
			st := cache.Stats()
			fmt.Printf("\ncache %s: %d hits, %d misses, %d new results stored\n",
				*cacheDir, st.Hits, st.Misses, st.Puts)
			cache.Close()
		}()
	}

	fmt.Println("workload:", *workload)
	fmt.Println("\nL2 TLB entries sweep (8 walkers, 256-entry buffer):")
	for _, entries := range []int{256, 512, 1024, 2048} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = *workload
		cfg.GPU.L2TLBEntries = entries
		report(ctx, cache, fmt.Sprintf("%5d entries", entries), cfg)
	}

	fmt.Println("\npage table walker sweep (512-entry L2 TLB):")
	for _, walkers := range []int{4, 8, 16, 32} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = *workload
		cfg.IOMMU.Walkers = walkers
		report(ctx, cache, fmt.Sprintf("%5d walkers", walkers), cfg)
	}

	fmt.Println("\nIOMMU buffer sweep (scheduler lookahead):")
	for _, buf := range []int{64, 128, 256, 512} {
		cfg := gpuwalk.DefaultConfig()
		cfg.Workload = *workload
		cfg.IOMMU.BufferEntries = buf
		report(ctx, cache, fmt.Sprintf("%5d buffer", buf), cfg)
	}
}

// report simulates cfg under both schedulers through the cache and
// prints the comparison.
func report(ctx context.Context, cache *gpuwalk.ResultCache, label string, cfg gpuwalk.Config) {
	runOne := func(kind gpuwalk.SchedulerKind) gpuwalk.Result {
		cfg.Scheduler = kind
		res, _, err := gpuwalk.RunCached(ctx, cache, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := runOne(gpuwalk.FCFS)
	test := runOne(gpuwalk.SIMTAware)
	speedup := float64(base.Cycles) / float64(test.Cycles)
	fmt.Printf("  %s: fcfs %9d cy, simt-aware %9d cy, speedup %.3fx\n",
		label, base.Cycles, test.Cycles, speedup)
}
