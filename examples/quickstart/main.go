// Quickstart: run one irregular workload under the baseline FCFS
// page-walk scheduler and under the paper's SIMT-aware scheduler, and
// report the speedup — the headline experiment of the paper in ~30
// lines of API use.
package main

import (
	"fmt"
	"log"

	"gpuwalk"
)

func main() {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "MVT" // matrix-vector product & transpose (irregular)

	base, test, speedup, err := gpuwalk.Compare(cfg, gpuwalk.FCFS, gpuwalk.SIMTAware)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload            %s\n", base.Workload)
	fmt.Printf("FCFS                %d cycles, %d page walks\n",
		base.Cycles, base.PageWalks())
	fmt.Printf("SIMT-aware          %d cycles, %d page walks\n",
		test.Cycles, test.PageWalks())
	fmt.Printf("speedup             %.2fx\n", speedup)
	fmt.Printf("stall reduction     %.1f%%\n",
		100*(1-float64(test.StallCycles)/float64(base.StallCycles)))
	fmt.Printf("walk reduction      %.1f%%\n",
		100*(1-float64(test.PageWalks())/float64(base.PageWalks())))
}
