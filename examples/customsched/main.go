// Customsched: plug a user-defined page-walk scheduling policy into the
// simulator through the public Scheduler interface and race it against
// the built-in policies.
//
// The custom policy below is "fewest-pending-first": it tracks how many
// requests of each SIMD instruction are pending and services the
// instruction closest to completion — a plausible alternative reading of
// shortest-job-first that ignores PWC estimates.
package main

import (
	"fmt"
	"log"

	"gpuwalk"
)

// fewestPending services the instruction with the fewest pending
// requests, oldest request first within it.
type fewestPending struct{}

func (fewestPending) Name() string { return "fewest-pending" }

// OnArrival needs no bookkeeping: Select counts pending requests
// directly from the buffer.
func (fewestPending) OnArrival(*gpuwalk.Request, []*gpuwalk.Request) {}

func (fewestPending) Select(pending []*gpuwalk.Request) int {
	count := make(map[uint64]int, len(pending))
	for _, r := range pending {
		count[uint64(r.Instr)]++
	}
	best := 0
	for i := 1; i < len(pending); i++ {
		ci, cb := count[uint64(pending[i].Instr)], count[uint64(pending[best].Instr)]
		if ci < cb || (ci == cb && pending[i].Seq < pending[best].Seq) {
			best = i
		}
	}
	return best
}

func main() {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "BIC"

	tr, err := gpuwalk.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, kind gpuwalk.SchedulerKind, custom gpuwalk.Scheduler) gpuwalk.Result {
		c := cfg
		c.Scheduler = kind
		c.CustomScheduler = custom
		res, err := gpuwalk.RunTrace(c, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d cycles  %7d walks\n", name, res.Cycles, res.PageWalks())
		return res
	}

	fcfs := run("fcfs", gpuwalk.FCFS, nil)
	run("simt-aware", gpuwalk.SIMTAware, nil)
	custom := run("fewest-pending", "", fewestPending{})
	fmt.Printf("\nfewest-pending vs fcfs: %.2fx\n", gpuwalk.Speedup(fcfs, custom))
}
