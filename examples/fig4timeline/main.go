// Fig4timeline reproduces the paper's Figure 4 illustration from a real
// simulation: two SIMD instructions ("load A" with 3 page walks and
// "load B" with 5) arrive at the IOMMU with their requests interleaved.
// Under FCFS, service interleaves and both loads finish late; under the
// SIMT-aware scheduler, batching services each instruction's walks
// together, so A completes much earlier without delaying B.
//
// The timelines below are rendered from the IOMMU's recorded walk
// schedule, not drawn by hand.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"gpuwalk/internal/core"
	"gpuwalk/internal/iommu"
	"gpuwalk/internal/mmu"
	"gpuwalk/internal/obs"
	"gpuwalk/internal/pwc"
	"gpuwalk/internal/sim"
	"gpuwalk/internal/textplot"
)

// arrival is one walk request reaching the IOMMU.
type arrival struct {
	vpn   uint64
	instr core.InstrID
}

// fig4Arrivals interleaves load A (instr 1, 3 walks) with load B
// (instr 2, 5 walks), as in the paper's Figure 4.
var fig4Arrivals = []arrival{
	{0x10 << 18, 1}, // A req 0
	{0x20 << 18, 2}, // B req 0
	{0x21 << 18, 2}, // B req 1
	{0x11 << 18, 1}, // A req 1
	{0x22 << 18, 2}, // B req 2
	{0x23 << 18, 2}, // B req 3
	{0x12 << 18, 1}, // A req 2
	{0x24 << 18, 2}, // B req 4
}

func run(sched core.Scheduler, tracePath string) ([]iommu.WalkRecord, map[core.InstrID]uint64) {
	eng := sim.NewEngine()
	pm := mmu.NewPhysMem(1 << 30)
	alloc := mmu.NewAllocator(pm, 7)
	as := mmu.NewAddressSpace(pm, alloc)

	cfg := iommu.Config{
		L1TLBEntries: 4, L2TLBEntries: 16, L2TLBWays: 4,
		BufferEntries: 16,
		Walkers:       2, // as drawn in the paper's figure
		TransferLat:   5, TLBLat: 1, PWCLat: 2, ReplyLat: 5,
		PWC:            pwc.Config{EntriesPerLevel: 8, Ways: 4},
		RecordSchedule: true,
	}
	dram := func(addr uint64, done func()) bool {
		eng.After(100, done)
		return true
	}
	io := iommu.New(eng, cfg, sched, as.PT, dram)

	var tracer *obs.Tracer
	if tracePath != "" {
		tracer = obs.NewTracer()
		tracer.Attach(eng.Now)
		io.SetTracer(tracer)
	}

	finish := map[core.InstrID]uint64{}
	for i, a := range fig4Arrivals {
		a := a
		if _, err := as.Ensure(a.vpn << mmu.PageBits); err != nil {
			log.Fatal(err)
		}
		// Requests trickle in a few cycles apart, interleaved.
		eng.At(sim.Cycle(i*3), func() {
			io.Translate(iommu.TranslateReq{
				VPN:   a.vpn,
				Instr: a.instr,
				Done: func(uint64) {
					if t := uint64(eng.Now()); t > finish[a.instr] {
						finish[a.instr] = t
					}
				},
			})
		})
	}
	eng.Run()
	if tracer != nil {
		if err := tracer.WriteChromeFile(tracePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s (%d events)\n", tracePath, tracer.Len())
	}
	return io.ScheduleLog(), finish
}

func render(name string, log []iommu.WalkRecord, finish map[core.InstrID]uint64) {
	labels := map[core.InstrID]rune{1: 'A', 2: 'B'}
	var spans []textplot.Span
	for _, rec := range log {
		spans = append(spans, textplot.Span{
			Row: rec.Walker, Start: uint64(rec.Start), End: uint64(rec.End),
			Label: labels[rec.Instr],
		})
	}
	textplot.Gantt(os.Stdout, name+": walk service order (A = load A, B = load B)", 2, spans, 64)
	fmt.Printf("load A finishes at cycle %d, load B at cycle %d\n", finish[1], finish[2])
}

func main() {
	tracePrefix := flag.String("trace", "", "write Chrome trace_event JSON files <prefix>-fcfs.json and <prefix>-simt.json")
	flag.Parse()

	fcfsTrace, simtTrace := "", ""
	if *tracePrefix != "" {
		fcfsTrace = *tracePrefix + "-fcfs.json"
		simtTrace = *tracePrefix + "-simt.json"
	}

	fcfsLog, fcfsFinish := run(core.FCFS{}, fcfsTrace)
	render("FCFS (Figure 4a)", fcfsLog, fcfsFinish)

	simt, err := core.New(core.KindSIMTAware, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	simtLog, simtFinish := run(simt, simtTrace)
	render("SIMT-aware (Figure 4b)", simtLog, simtFinish)

	if simtFinish[1] < fcfsFinish[1] && simtFinish[2] <= fcfsFinish[2]+100 {
		fmt.Println("\nbatching finished load A earlier without hurting load B ✓")
	}
}
