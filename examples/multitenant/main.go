// Multitenant: co-run an irregular "aggressor" (MVT) with a regular
// "victim" (K-Means) on the same GPU — a MASK-style multi-application
// scenario — and show how each page-walk scheduler shares the IOMMU
// between them. Under FCFS, the victim's handful of walks queue behind
// the aggressor's storms; SJF-based schedulers restore it.
package main

import (
	"fmt"
	"log"

	"gpuwalk"
	"gpuwalk/internal/workload"
)

func main() {
	cfg := gpuwalk.DefaultConfig()

	mvt, err := gpuwalk.WorkloadByName("MVT")
	if err != nil {
		log.Fatal(err)
	}
	kmn, err := gpuwalk.WorkloadByName("KMN")
	if err != nil {
		log.Fatal(err)
	}
	gen := cfg.Gen
	gen.CUs = cfg.GPU.CUs
	gen.WavefrontWidth = cfg.GPU.WavefrontWidth
	merged := workload.Merge("MVT+KMN", mvt.Generate(gen), kmn.Generate(gen))

	// The victim's solo finish time is the interference-free baseline.
	solo := cfg
	solo.Workload = "KMN"
	soloRes, err := gpuwalk.Run(solo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("KMN alone finishes at cycle %d\n\n", soloRes.Cycles)

	fmt.Printf("%-12s %16s %16s %10s\n", "scheduler", "MVT finish", "KMN finish", "KMN slowdown")
	for _, kind := range []gpuwalk.SchedulerKind{gpuwalk.FCFS, gpuwalk.SIMTAware, gpuwalk.CUFair} {
		c := cfg
		c.Scheduler = kind
		res, err := gpuwalk.RunTrace(c, merged)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %16d %16d %9.2fx\n", kind,
			res.PerApp[0].FinishCycle, res.PerApp[1].FinishCycle,
			float64(res.PerApp[1].FinishCycle)/float64(soloRes.Cycles))
	}
}
