package gpuwalk_test

import (
	"bytes"
	"testing"

	"gpuwalk"
	"gpuwalk/internal/obs"
)

// chaosConfig is the golden-test workload with every fault class
// injected and the watchdog armed — the full-system acceptance run for
// the fault subsystem.
func chaosConfig() gpuwalk.Config {
	cfg := obsConfig(gpuwalk.SIMTAware)
	cfg.FaultInject = gpuwalk.FaultInjectConfig{
		Seed:             11,
		NonPresentRate:   0.05,
		WalkerKillPeriod: 9,
		PWCCorruptRate:   0.10,
	}
	cfg.IOMMU.Faults = gpuwalk.FaultConfig{
		QueueEntries: 8, ServiceSlots: 2, ServiceLat: 600, ServiceJitter: 300, RetryBackoff: 32,
	}
	cfg.IOMMU.OverflowEntries = 256
	cfg.WatchdogInterval = 2_000_000
	return cfg
}

// TestChaosRunCompletes is the system-level acceptance criterion: a
// fault-injected run (non-present faults, walker kills, PWC
// corruption) finishes every instruction without panics or watchdog
// trips, and the injected faults demonstrably happened.
func TestChaosRunCompletes(t *testing.T) {
	res, err := gpuwalk.Run(chaosConfig())
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if res.Injected.FaultsInjected == 0 {
		t.Error("no page faults injected; chaos run is vacuous")
	}
	if res.Injected.WalkersKilled < 1 {
		t.Error("no walkers killed; chaos run is vacuous")
	}
	if res.IOMMU.Faults == 0 || res.IOMMU.FaultsServiced != res.IOMMU.Faults {
		t.Errorf("faults %d serviced %d; every fault must be serviced",
			res.IOMMU.Faults, res.IOMMU.FaultsServiced)
	}
	if res.IOMMU.WalkerKills == 0 || res.IOMMU.WalkRetries < res.IOMMU.WalkerKills {
		t.Errorf("kills %d retries %d; every killed walk must retry",
			res.IOMMU.WalkerKills, res.IOMMU.WalkRetries)
	}
	t.Logf("cycles=%d faults=%d kills=%d corrupted=%d retries=%d",
		res.Cycles, res.IOMMU.Faults, res.IOMMU.WalkerKills,
		res.Injected.ProbesCorrupted, res.IOMMU.WalkRetries)
}

// TestChaosRunDeterministic runs the identical fault-injected workload
// twice and requires byte-identical Chrome traces and metrics CSVs.
func TestChaosRunDeterministic(t *testing.T) {
	trace1, csv1 := traceRun(t, chaosConfig())
	trace2, csv2 := traceRun(t, chaosConfig())
	if !bytes.Equal(trace1, trace2) {
		t.Error("chaos trace JSON differs between identical runs")
	}
	if !bytes.Equal(csv1, csv2) {
		t.Error("chaos metrics CSV differs between identical runs")
	}
	if err := obs.CheckChrome(trace1); err != nil {
		t.Errorf("invalid Chrome trace: %v", err)
	}
}

// TestChaosAcrossSchedulers sweeps every policy under injection — the
// fault path must compose with each scheduling rule, not just the
// default.
func TestChaosAcrossSchedulers(t *testing.T) {
	for _, sched := range gpuwalk.SchedulerKinds() {
		t.Run(string(sched), func(t *testing.T) {
			cfg := chaosConfig()
			cfg.Scheduler = sched
			res, err := gpuwalk.Run(cfg)
			if err != nil {
				t.Fatalf("chaos run failed: %v", err)
			}
			if res.IOMMU.FaultsServiced != res.IOMMU.Faults {
				t.Errorf("faults %d serviced %d", res.IOMMU.Faults, res.IOMMU.FaultsServiced)
			}
		})
	}
}
