package gpuwalk

import (
	"errors"

	"gpuwalk/internal/gpu"
	"gpuwalk/internal/simcache"
)

// SimVersion names the simulation model's behavior generation. It is
// folded into every ConfigHash, so results cached under one version are
// never served after a model change (see internal/gpu.ModelVersion for
// the bump policy).
const SimVersion = gpu.ModelVersion

// ErrUncacheable reports a Config whose behavior is not a pure function
// of its serializable fields, so it cannot be content-addressed.
var ErrUncacheable = errors.New("gpuwalk: config with a CustomScheduler cannot be hashed")

// ConfigHash returns the content address of a run: the SHA-256 of the
// canonicalized configuration (workload spec and seed included) plus
// the simulator version. Two configs that simulate identically hash
// identically — trace-generation defaults are applied before hashing,
// so a zero Gen and an explicit WithDefaults() Gen produce the same
// key, and JSON field order never matters. Any semantic change (a
// different workload, seed, scheduler, or machine parameter) changes
// the hash.
//
// Configs carrying a CustomScheduler are code, not data, and return
// ErrUncacheable.
func ConfigHash(cfg Config) (string, error) {
	if cfg.CustomScheduler != nil {
		return "", ErrUncacheable
	}
	return simcache.Key("gpuwalk-config", SimVersion, canonicalizeConfig(cfg))
}

// canonicalizeConfig normalizes cfg the way Run will interpret it:
// live handles cleared, trace-generation parameters resolved to their
// effective values (Generate overrides Gen.CUs/WavefrontWidth from the
// GPU config and applies the scaled defaults).
func canonicalizeConfig(cfg Config) Config {
	cfg.CustomScheduler = nil
	cfg.Obs = ObsConfig{}
	gen := cfg.Gen
	gen.CUs = cfg.GPU.CUs
	gen.WavefrontWidth = cfg.GPU.WavefrontWidth
	cfg.Gen = gen.WithDefaults()
	return cfg
}
