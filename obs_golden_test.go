package gpuwalk_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpuwalk"
	"gpuwalk/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace/metrics files")

// obsConfig returns a tiny seeded workload small enough to keep the
// golden files readable while still exercising every hook: TLB misses,
// walk scheduling, PWC protection, DRAM accesses.
func obsConfig(sched gpuwalk.SchedulerKind) gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.GPU.CUs = 2
	cfg.Gen.WavefrontsPerCU = 1
	cfg.Gen.InstrsPerWavefront = 3
	cfg.Gen.Scale = 0.02
	cfg.Gen.Seed = 7
	cfg.Seed = 7
	cfg.Scheduler = sched
	return cfg
}

// traceRun executes cfg with tracing and metrics attached and returns
// the serialized Chrome trace and metrics CSV.
func traceRun(t *testing.T, cfg gpuwalk.Config) (trace, csv []byte) {
	t.Helper()
	tr := gpuwalk.NewTracer()
	met := gpuwalk.NewMetrics()
	cfg.Obs = gpuwalk.ObsConfig{Tracer: tr, Metrics: met, MetricsEpoch: 500}
	if _, err := gpuwalk.Run(cfg); err != nil {
		t.Fatal(err)
	}
	var tb, mb bytes.Buffer
	if err := tr.WriteChrome(&tb); err != nil {
		t.Fatal(err)
	}
	if err := met.WriteCSV(&mb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// TestTraceDeterminism runs the same seeded workload twice under every
// policy and requires byte-identical trace JSON and metrics CSV, plus a
// structurally valid Chrome trace.
func TestTraceDeterminism(t *testing.T) {
	for _, sched := range gpuwalk.SchedulerKinds() {
		t.Run(string(sched), func(t *testing.T) {
			cfg := obsConfig(sched)
			trace1, csv1 := traceRun(t, cfg)
			trace2, csv2 := traceRun(t, cfg)
			if !bytes.Equal(trace1, trace2) {
				t.Error("trace JSON differs between identical runs")
			}
			if !bytes.Equal(csv1, csv2) {
				t.Error("metrics CSV differs between identical runs")
			}
			if err := obs.CheckChrome(trace1); err != nil {
				t.Errorf("invalid Chrome trace: %v", err)
			}
			if len(csv1) == 0 {
				t.Error("empty metrics CSV")
			}
		})
	}
}

// TestTraceGolden pins the exact observability output of one small
// workload per policy. Regenerate with `go test -run TraceGolden -update`
// after intentional changes to event content or metric names.
func TestTraceGolden(t *testing.T) {
	for _, sched := range []gpuwalk.SchedulerKind{gpuwalk.FCFS, gpuwalk.SIMTAware} {
		t.Run(string(sched), func(t *testing.T) {
			trace, csv := traceRun(t, obsConfig(sched))
			compareGolden(t, fmt.Sprintf("trace-%s.json", sched), trace)
			compareGolden(t, fmt.Sprintf("metrics-%s.csv", sched), csv)
		})
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "obs", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden (%d vs %d bytes); run with -update if intentional",
			name, len(got), len(want))
	}
}
