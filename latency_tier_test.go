package gpuwalk_test

import (
	"math"
	"testing"

	"gpuwalk"
)

// TestLatencyTierValidation bounds the approximation error of the
// latency-model walker tier (IOMMU.WalkerLatencyModel) against the full
// contended-DRAM model on the four paper workloads. The tier replaces
// each PTE read's DRAM round trip with a fixed uncontended-row-miss
// latency, so it underestimates queueing delay under contention; the
// bounds below were measured on these workloads at the micro scale and
// then given headroom. They are documented in README.md — tighten them
// only with fresh measurements, never loosen them to paper over a
// regression.
func TestLatencyTierValidation(t *testing.T) {
	const (
		maxCyclesErr  = 0.25 // relative end-to-end cycle count error
		maxWalkLatErr = 0.55 // relative mean walk latency error
	)
	for _, wl := range []string{"MVT", "ATX", "GEV", "SSP"} {
		cfg := microConfig()
		cfg.Workload = wl
		cfg.Scheduler = gpuwalk.SIMTAware

		full, err := gpuwalk.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.IOMMU.WalkerLatencyModel = true
		fast, err := gpuwalk.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}

		if full.IOMMU.WalksDone == 0 || fast.IOMMU.WalksDone == 0 {
			t.Fatalf("%s: no walks simulated (full %d, fast %d)",
				wl, full.IOMMU.WalksDone, fast.IOMMU.WalksDone)
		}
		// The tier changes timing only: the same work must happen.
		if full.Instructions != fast.Instructions {
			t.Errorf("%s: instructions %d (fast) vs %d (full)",
				wl, fast.Instructions, full.Instructions)
		}

		cycErr := relErr(float64(fast.Cycles), float64(full.Cycles))
		latErr := relErr(fast.IOMMU.WalkLatency.Value(), full.IOMMU.WalkLatency.Value())
		t.Logf("%s: cycles %d vs %d (err %.3f), mean walk lat %.0f vs %.0f (err %.3f)",
			wl, fast.Cycles, full.Cycles, cycErr,
			fast.IOMMU.WalkLatency.Value(), full.IOMMU.WalkLatency.Value(), latErr)
		if cycErr > maxCyclesErr {
			t.Errorf("%s: cycle-count error %.3f exceeds bound %.2f", wl, cycErr, maxCyclesErr)
		}
		if latErr > maxWalkLatErr {
			t.Errorf("%s: walk-latency error %.3f exceeds bound %.2f", wl, latErr, maxWalkLatErr)
		}
	}
}

// relErr is |a-b| / b.
func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / b
}
