//go:build !race

package gpuwalk_test

// raceEnabled reports whether the race detector is compiled in; timing
// guards skip themselves under -race.
const raceEnabled = false
