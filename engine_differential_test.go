package gpuwalk_test

import (
	"testing"

	"gpuwalk"
	"gpuwalk/internal/gpu"
)

// runRecordedEngine is runRecorded with the event-queue selection
// exposed: referenceEngine=true runs the whole system on the retained
// container/heap queue instead of the flat four-ary heap.
func runRecordedEngine(t *testing.T, cfg gpuwalk.Config, tr *gpuwalk.Trace, referenceEngine bool) (gpuwalk.Result, []string) {
	t.Helper()
	cfg.IOMMU.RecordSchedule = true
	cfg.IOMMU.RecordLimit = 1 << 20
	sys, err := gpu.NewSystem(gpu.Params{
		GPU:             cfg.GPU,
		DRAM:            cfg.DRAM,
		IOMMU:           cfg.IOMMU,
		SchedKind:       cfg.Scheduler,
		SchedOpts:       cfg.SchedOpts,
		Seed:            cfg.Seed,
		FaultInject:     cfg.FaultInject,
		ReferenceEngine: referenceEngine,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	log := sys.IOMMU().ScheduleLog()
	out := make([]string, 0, len(log))
	for _, w := range log {
		out = append(out, walkKey(w.Walker, uint64(w.Start), uint64(w.End), uint64(w.Instr), w.VPN))
	}
	return res, out
}

// TestSystemDifferentialFlatVsReferenceEngine runs full simulations of
// the four paper workloads, once on the flat four-ary event queue (the
// default) and once on the retained container/heap reference engine,
// and asserts the walk dispatch schedules — and the end-to-end cycle
// counts — are byte-identical. This is the system-level proof that the
// queue swap changed throughput, not behavior; any divergence here is a
// release blocker, not a test to skip.
func TestSystemDifferentialFlatVsReferenceEngine(t *testing.T) {
	for _, wl := range []string{"MVT", "ATX", "GEV", "SSP"} {
		cfg := microConfig()
		cfg.Workload = wl
		cfg.Scheduler = gpuwalk.SIMTAware
		cfg.SchedOpts.AgingThreshold = 32
		cfg.IOMMU.BufferEntries = 16
		cfg.IOMMU.Walkers = 2
		tr, err := gpuwalk.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		refRes, refLog := runRecordedEngine(t, cfg, tr, true)
		flatRes, flatLog := runRecordedEngine(t, cfg, tr, false)
		if len(refLog) == 0 {
			t.Fatalf("%s: empty schedule log", wl)
		}
		compareLogs(t, wl+"/engine", refLog, flatLog)
		if refRes.Cycles != flatRes.Cycles || refRes.StallCycles != flatRes.StallCycles {
			t.Errorf("%s: cycles %d/%d vs reference engine %d/%d",
				wl, flatRes.Cycles, flatRes.StallCycles, refRes.Cycles, refRes.StallCycles)
		}
		if refRes.IOMMU.WalksDone != flatRes.IOMMU.WalksDone {
			t.Errorf("%s: walks %d vs reference engine %d",
				wl, flatRes.IOMMU.WalksDone, refRes.IOMMU.WalksDone)
		}
	}
}

// TestSystemDifferentialEngineWithFaults repeats the engine check under
// fault injection (walker kills, non-present PTEs), which exercises the
// walk-state pool's abort/fault recycling paths and the fault queue's
// retry/backoff events on both queues.
func TestSystemDifferentialEngineWithFaults(t *testing.T) {
	cfg := microConfig()
	cfg.Workload = "SSP"
	cfg.Scheduler = gpuwalk.FCFS
	cfg.IOMMU.BufferEntries = 16
	cfg.IOMMU.Walkers = 2
	cfg.FaultInject.Seed = 5
	cfg.FaultInject.NonPresentRate = 0.05
	cfg.FaultInject.WalkerKillPeriod = 40
	tr, err := gpuwalk.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refRes, refLog := runRecordedEngine(t, cfg, tr, true)
	flatRes, flatLog := runRecordedEngine(t, cfg, tr, false)
	if len(refLog) == 0 {
		t.Fatal("empty schedule log")
	}
	compareLogs(t, "SSP/engine-faults", refLog, flatLog)
	if refRes.Cycles != flatRes.Cycles {
		t.Errorf("cycles %d vs reference engine %d", flatRes.Cycles, refRes.Cycles)
	}
}
