// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index), plus ablation benches
// for the design choices and micro-benchmarks of the hot structures.
//
// Figure benches run the corresponding experiment at a reduced scale per
// iteration and report the headline metric of that figure (speedup,
// normalized ratio, ...) via b.ReportMetric, so `go test -bench=.`
// doubles as a results table.
package gpuwalk_test

import (
	"strconv"
	"testing"

	"gpuwalk"
	"gpuwalk/internal/core"
	"gpuwalk/internal/dram"
	"gpuwalk/internal/experiments"
	"gpuwalk/internal/gpu"
	"gpuwalk/internal/pwc"
	"gpuwalk/internal/sim"
	"gpuwalk/internal/tlb"
	"gpuwalk/internal/workload"
)

// benchGen is the reduced scale used by the figure benches.
func benchGen() workload.GenConfig {
	return workload.GenConfig{
		WavefrontsPerCU:    3,
		InstrsPerWavefront: 10,
		Scale:              0.0625,
		Seed:               1,
	}
}

func newBenchSuite() *experiments.Suite {
	return experiments.NewSuite(benchGen(), 1)
}

// --- Tables -----------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := gpuwalk.DefaultConfig().GPU.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	gen := benchGen()
	for i := 0; i < b.N; i++ {
		for _, g := range workload.Registry() {
			tr := g.Generate(gen)
			if tr.Instructions() == 0 {
				b.Fatal("empty trace")
			}
		}
	}
}

// --- Figures ----------------------------------------------------------

func BenchmarkFig02(b *testing.B) {
	var last []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		last = rows
	}
	var fcfs, simt []float64
	for _, r := range last {
		fcfs = append(fcfs, r.FCFS)
		simt = append(simt, r.SIMTAware)
	}
	b.ReportMetric(experiments.GeoMean(fcfs), "fcfs/random")
	b.ReportMetric(experiments.GeoMean(simt), "simt/random")
}

func BenchmarkFig03(b *testing.B) {
	var frac116 float64
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		frac116 = rows[0].Fractions[0]
	}
	b.ReportMetric(frac116, "MVT-frac-1-16")
}

func BenchmarkFig05(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.Fraction
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "interleaved-frac")
}

func BenchmarkFig06(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		rows, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		mean = 0
		for _, r := range rows {
			mean += r.Last
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "last/first")
}

// ratioBench runs one of the Fig 8-12 family and reports the irregular
// geometric mean.
func ratioBench(b *testing.B, f func(*experiments.Suite) ([]experiments.RatioRow, error), metric string) {
	b.Helper()
	var rows []experiments.RatioRow
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		var err error
		rows, err = f(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	var irr []float64
	for _, r := range rows {
		if r.Irregular {
			irr = append(irr, r.Value)
		}
	}
	b.ReportMetric(experiments.GeoMean(irr), metric)
}

func BenchmarkFig08(b *testing.B) {
	ratioBench(b, (*experiments.Suite).Fig8, "speedup")
}

func BenchmarkFig09(b *testing.B) {
	ratioBench(b, (*experiments.Suite).Fig9, "norm-stalls")
}

func BenchmarkFig10(b *testing.B) {
	ratioBench(b, (*experiments.Suite).Fig10, "norm-gap")
}

func BenchmarkFig11(b *testing.B) {
	ratioBench(b, (*experiments.Suite).Fig11, "norm-walks")
}

func BenchmarkFig12(b *testing.B) {
	ratioBench(b, (*experiments.Suite).Fig12, "norm-wavefronts")
}

// sensBench runs one sensitivity variant and reports mean speedup.
func sensBench(b *testing.B, v experiments.SensitivityVariant) {
	b.Helper()
	var rows []experiments.SensitivityRow
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		var err error
		rows, err = s.Sensitivity([]experiments.SensitivityVariant{v})
		if err != nil {
			b.Fatal(err)
		}
	}
	var vals []float64
	for _, r := range rows {
		vals = append(vals, r.Speedup)
	}
	b.ReportMetric(experiments.GeoMean(vals), "speedup")
}

func BenchmarkFig13A(b *testing.B) { sensBench(b, experiments.Fig13Variants()[0]) }
func BenchmarkFig13B(b *testing.B) { sensBench(b, experiments.Fig13Variants()[1]) }
func BenchmarkFig13C(b *testing.B) { sensBench(b, experiments.Fig13Variants()[2]) }
func BenchmarkFig14A(b *testing.B) { sensBench(b, experiments.Fig14Variants()[0]) }
func BenchmarkFig14B(b *testing.B) { sensBench(b, experiments.Fig14Variants()[1]) }

// --- Ablations --------------------------------------------------------

// BenchmarkAblationPolicy compares the two halves of the SIMT-aware
// scheduler (SJF-only and batch-only) against the full policy on MVT.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, kind := range []gpuwalk.SchedulerKind{
		gpuwalk.FCFS, gpuwalk.SJFOnly, gpuwalk.BatchOnly, gpuwalk.SIMTAware,
	} {
		b.Run(string(kind), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "MVT"
				cfg.Scheduler = kind
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationPWCGuard measures the paper's 2-bit-counter PWC
// replacement protection on and off.
func BenchmarkAblationPWCGuard(b *testing.B) {
	for _, guard := range []bool{true, false} {
		name := "guard-off"
		if guard {
			name = "guard-on"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "GEV"
				cfg.Scheduler = gpuwalk.SIMTAware
				cfg.IOMMU.PWC.CounterGuard = guard
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationVPNMerge measures coalescing duplicate same-VPN walks
// in the IOMMU buffer (off in the paper's hardware) on and off.
func BenchmarkAblationVPNMerge(b *testing.B) {
	for _, merge := range []bool{false, true} {
		name := "merge-off"
		if merge {
			name = "merge-on"
		}
		b.Run(name, func(b *testing.B) {
			var walks uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "ATX"
				cfg.Scheduler = gpuwalk.FCFS
				cfg.IOMMU.MergeSameVPN = merge
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				walks = res.PageWalks()
			}
			b.ReportMetric(float64(walks), "walks")
		})
	}
}

// BenchmarkAblationAging sweeps the starvation threshold.
func BenchmarkAblationAging(b *testing.B) {
	for _, aging := range []uint64{256, 2048, 1 << 20} {
		b.Run(agingName(aging), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "MVT"
				cfg.Scheduler = gpuwalk.SIMTAware
				cfg.SchedOpts.AgingThreshold = aging
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

func agingName(v uint64) string {
	switch v {
	case 1 << 20:
		return "aging-1M"
	case 2048:
		return "aging-2k"
	default:
		return "aging-256"
	}
}

// BenchmarkDiscussionLargePages runs the Section VI comparison (2 MB
// pages vs 4 KB base pages) and reports the mean large-page speedup.
func BenchmarkDiscussionLargePages(b *testing.B) {
	var rows []experiments.LargePageRow
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		var err error
		rows, err = s.LargePages()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.Speedup2M)
	}
	b.ReportMetric(experiments.GeoMean(sp), "2M-speedup")
}

// BenchmarkExtensionFairness runs the CU-fair QoS comparison.
func BenchmarkExtensionFairness(b *testing.B) {
	var rows []experiments.FairnessRow
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		var err error
		rows, err = s.Fairness()
		if err != nil {
			b.Fatal(err)
		}
	}
	var sp []float64
	jain := 0.0
	for _, r := range rows {
		sp = append(sp, r.SpeedupCUFair)
		jain += r.JainCUFair
	}
	b.ReportMetric(experiments.GeoMean(sp), "cufair-speedup")
	b.ReportMetric(jain/float64(len(rows)), "cufair-jain")
}

// BenchmarkExtensionMultiTenant runs the MASK-style co-run comparison.
func BenchmarkExtensionMultiTenant(b *testing.B) {
	var rows []experiments.MultiTenantRow
	for i := 0; i < b.N; i++ {
		s := newBenchSuite()
		var err error
		rows, err = s.MultiTenant("MVT", "KMN")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Scheduler == "simt-aware" {
			b.ReportMetric(r.VictimSlowdown, "victim-slowdown-simt")
		}
	}
}

// BenchmarkExtensionPrefetch measures the next-page translation
// prefetcher. It only ever uses idle walkers, so it engages on the
// regular streaming workloads (whose IOMMU has slack) and is inert on
// the walker-saturated irregular ones.
func BenchmarkExtensionPrefetch(b *testing.B) {
	for _, pf := range []bool{false, true} {
		name := "prefetch-off"
		if pf {
			name = "prefetch-on"
		}
		b.Run(name, func(b *testing.B) {
			var walks, hits uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "SSP"
				cfg.IOMMU.PrefetchNext = pf
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				walks = res.PageWalks()
				hits = res.IOMMU.PrefetchHits
			}
			b.ReportMetric(float64(walks), "walks")
			b.ReportMetric(float64(hits), "prefetch-hits")
		})
	}
}

// BenchmarkAblationWavefrontSched measures interaction between the
// CU's wavefront scheduler and the walk scheduler (Section VI).
func BenchmarkAblationWavefrontSched(b *testing.B) {
	for _, pol := range []gpu.WavefrontSched{gpu.WFRoundRobin, gpu.WFOldest, gpu.WFYoungest} {
		b.Run(pol.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "BIC"
				cfg.GPU.WavefrontSched = pol
				cfg.Gen = benchGen()
				base, test, sp, err := gpuwalk.Compare(cfg, gpuwalk.FCFS, gpuwalk.SIMTAware)
				if err != nil {
					b.Fatal(err)
				}
				_, _ = base, test
				speedup = sp
			}
			b.ReportMetric(speedup, "simt-speedup")
		})
	}
}

// BenchmarkAblationTLBRepl sweeps the GPU TLB replacement policy.
func BenchmarkAblationTLBRepl(b *testing.B) {
	for _, repl := range []tlb.Replacement{tlb.LRU, tlb.FIFO, tlb.RandomRepl} {
		b.Run(repl.String(), func(b *testing.B) {
			var walks uint64
			for i := 0; i < b.N; i++ {
				cfg := gpuwalk.DefaultConfig()
				cfg.Workload = "MVT"
				cfg.GPU.TLBRepl = repl
				cfg.Gen = benchGen()
				res, err := gpuwalk.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				walks = res.PageWalks()
			}
			b.ReportMetric(float64(walks), "walks")
		})
	}
}

// --- Micro-benchmarks of the hot structures ---------------------------

func BenchmarkEngineEvent(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.After(1, func() {})
		eng.Step()
	}
}

func BenchmarkTLBLookup(b *testing.B) {
	t := tlb.New(tlb.Config{Name: "bench", Entries: 512, Ways: 16})
	for vpn := uint64(0); vpn < 512; vpn++ {
		t.Insert(vpn, vpn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(uint64(i) & 511)
	}
}

func BenchmarkPWCProbe(b *testing.B) {
	p := pwc.New(pwc.DefaultConfig())
	for vpn := uint64(0); vpn < 64; vpn++ {
		p.Fill(vpn << 9)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Probe(uint64(i&63) << 9)
	}
}

func BenchmarkDRAMAccess(b *testing.B) {
	eng := sim.NewEngine()
	m := dram.New(eng, dram.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i)*64, false, nil)
		if i%64 == 63 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkSchedulerSelect measures steady-state scheduling throughput
// (one dispatch plus one arrival per iteration, buffer occupancy held
// at the target size) for the indexed pending buffer against the linear
// reference, across the ISSUE's buffer sweep. Requests arrive in
// same-instruction runs of 8, matching the coalescer's bursty miss
// pattern.
func BenchmarkSchedulerSelect(b *testing.B) {
	for _, kind := range []core.Kind{core.KindSIMTAware, core.KindCUFair} {
		for _, entries := range []int{256, 1024, 4096} {
			for _, ref := range []bool{true, false} {
				mode := "indexed"
				if ref {
					mode = "reference"
				}
				b.Run(string(kind)+"/"+mode+"/buf-"+strconv.Itoa(entries), func(b *testing.B) {
					benchSchedulerSteadyState(b, kind, entries, ref)
				})
			}
		}
	}
}

func benchSchedulerSteadyState(b *testing.B, kind core.Kind, entries int, ref bool) {
	s, err := core.New(kind, core.Options{Seed: 1, AgingThreshold: 1 << 20, Reference: ref})
	if err != nil {
		b.Fatal(err)
	}
	ix, _ := s.(core.IndexedScheduler)
	var pending []*core.Request
	seq := uint64(0)
	admit := func() {
		seq++
		instr := core.InstrID(seq / 8)
		r := &core.Request{
			Instr: instr,
			CU:    int(uint64(instr) % 8),
			Seq:   seq,
			Est:   1 + int(seq%4),
		}
		if ix != nil {
			ix.Admit(r)
			return
		}
		pending = append(pending, r)
		s.OnArrival(r, pending)
	}
	pick := func() {
		if ix != nil {
			ix.Pick()
			return
		}
		i := s.Select(pending)
		pending = append(pending[:i], pending[i+1:]...)
	}
	for i := 0; i < entries; i++ {
		admit()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pick()
		admit()
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	g, err := workload.ByName("XSB")
	if err != nil {
		b.Fatal(err)
	}
	gen := benchGen()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.Seed = uint64(i)
		g.Generate(gen)
	}
}

// BenchmarkEndToEnd measures whole-simulation throughput (simulated
// cycles per wall second) for one MVT run.
func BenchmarkEndToEnd(b *testing.B) {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "MVT"
	cfg.Gen = benchGen()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := gpuwalk.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
