package gpuwalk_test

import (
	"strings"
	"testing"

	"gpuwalk"
)

// microConfig returns a fast test configuration.
func microConfig() gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.Gen.WavefrontsPerCU = 2
	cfg.Gen.InstrsPerWavefront = 6
	cfg.Gen.Scale = 0.05
	cfg.Gen.Seed = 11
	cfg.Seed = 11
	return cfg
}

func TestDefaultConfigRuns(t *testing.T) {
	cfg := microConfig()
	res, err := gpuwalk.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "MVT" || res.Scheduler != "fcfs" {
		t.Errorf("defaults = %s/%s", res.Workload, res.Scheduler)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Error("empty result")
	}
}

func TestAllWorkloadsAllSchedulers(t *testing.T) {
	for _, wl := range gpuwalk.WorkloadNames() {
		for _, sk := range gpuwalk.SchedulerKinds() {
			cfg := microConfig()
			cfg.Workload = wl
			cfg.Scheduler = sk
			res, err := gpuwalk.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, sk, err)
			}
			if res.Instructions == 0 {
				t.Errorf("%s/%s: no instructions executed", wl, sk)
			}
		}
	}
}

func TestUnknownWorkload(t *testing.T) {
	cfg := microConfig()
	cfg.Workload = "BOGUS"
	if _, err := gpuwalk.Run(cfg); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestUnknownScheduler(t *testing.T) {
	cfg := microConfig()
	cfg.Scheduler = "bogus"
	if _, err := gpuwalk.Run(cfg); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestCompare(t *testing.T) {
	cfg := microConfig()
	base, test, speedup, err := gpuwalk.Compare(cfg, gpuwalk.FCFS, gpuwalk.SIMTAware)
	if err != nil {
		t.Fatal(err)
	}
	if base.Scheduler != "fcfs" || test.Scheduler != "simt-aware" {
		t.Errorf("schedulers = %s/%s", base.Scheduler, test.Scheduler)
	}
	if speedup != gpuwalk.Speedup(base, test) {
		t.Error("speedup inconsistent with Speedup helper")
	}
	if speedup <= 0 {
		t.Errorf("speedup = %f", speedup)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := gpuwalk.Result{Cycles: 200}
	b := gpuwalk.Result{Cycles: 100}
	if got := gpuwalk.Speedup(a, b); got != 2 {
		t.Errorf("Speedup = %f, want 2", got)
	}
	if got := gpuwalk.Speedup(a, gpuwalk.Result{}); got != 0 {
		t.Errorf("Speedup with zero divisor = %f", got)
	}
}

func TestGenerateMatchesMachineShape(t *testing.T) {
	cfg := microConfig()
	cfg.GPU.CUs = 4
	tr, err := gpuwalk.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range tr.Wavefronts {
		if w.CU >= 4 {
			t.Fatalf("trace wavefront pinned to CU %d with 4 CUs", w.CU)
		}
	}
}

func TestRunTraceCustom(t *testing.T) {
	cfg := microConfig()
	tr := &gpuwalk.Trace{Name: "custom", Footprint: 1 << 20}
	for wf := 0; wf < 2; wf++ {
		tr.Wavefronts = append(tr.Wavefronts, gpuwalk.WavefrontTrace{
			CU: wf,
			Instrs: []gpuwalk.MemInstr{
				{Lanes: []uint64{uint64(wf+1) << 20, uint64(wf+1)<<20 | 4096}},
				{Lanes: []uint64{uint64(wf+1)<<20 | 8192}, Write: true},
			},
		})
	}
	res, err := gpuwalk.RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "custom" {
		t.Errorf("Workload = %q", res.Workload)
	}
	if res.Instructions != 4 {
		t.Errorf("Instructions = %d, want 4", res.Instructions)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(gpuwalk.Workloads()) != 12 {
		t.Errorf("Workloads = %d", len(gpuwalk.Workloads()))
	}
	if len(gpuwalk.IrregularWorkloadNames()) != 6 {
		t.Errorf("irregular = %v", gpuwalk.IrregularWorkloadNames())
	}
	if _, err := gpuwalk.WorkloadByName("GEV"); err != nil {
		t.Error(err)
	}
	names := strings.Join(gpuwalk.WorkloadNames(), ",")
	for _, want := range []string{"XSB", "MVT", "HOT"} {
		if !strings.Contains(names, want) {
			t.Errorf("WorkloadNames missing %s", want)
		}
	}
}

func TestSchedulerKindsList(t *testing.T) {
	kinds := gpuwalk.SchedulerKinds()
	if len(kinds) != 6 {
		t.Errorf("SchedulerKinds = %v", kinds)
	}
}
