module gpuwalk

go 1.22
