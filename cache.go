package gpuwalk

import (
	"context"
	"fmt"

	"gpuwalk/internal/obs"
	"gpuwalk/internal/simcache"
)

// ResultCache is a persistent content-addressed store of simulation
// results, keyed by ConfigHash. It is what lets an interrupted sweep
// resume incrementally and a repeated one return near-instantly: the
// cached payload is the byte-exact JSON encoding of the Result a fresh
// simulation of the same config would produce.
//
// cmd/gpuwalkd serves jobs through one, cmd/paperfigs reuses one across
// sweeps (-resume / -cache), and examples/sensitivity shows the client
// pattern. See docs/SERVER.md for the on-disk layout.
type ResultCache = simcache.Cache

// ResultCacheStats counts cache activity (hits, misses, puts,
// evictions, integrity-check drops).
type ResultCacheStats = simcache.Stats

// OpenResultCache opens (creating if needed) a result cache rooted at
// dir. maxBytes caps the store's payload size with LRU eviction;
// 0 means unlimited. Entries are written atomically and digest-checked
// on every read, so a crashed writer can never corrupt later runs.
func OpenResultCache(dir string, maxBytes int64) (*ResultCache, error) {
	return simcache.Open(dir, simcache.Options{MaxBytes: maxBytes})
}

// RunCached is Run with read-through/write-through persistence: a
// config already in the cache returns its stored result without
// simulating (hit=true); a miss simulates under ctx and stores the
// result before returning. Configs that cannot be hashed (custom
// schedulers) bypass the cache and always simulate, as does a nil
// cache, so callers can make persistence an option without branching.
//
// When ctx carries a request-trace span (obs.ContextWithSpanRef — the
// job server threads one per work item), the lookup, simulation, and
// store are each recorded as child spans (cache.lookup, sim.run,
// cache.put), and a run with a Config.Obs.Tracer attached stamps the
// trace ID into the sim trace's metadata so the two timelines
// cross-reference. Without a span in ctx all of this is skipped at the
// cost of one pointer check.
func RunCached(ctx context.Context, c *ResultCache, cfg Config) (res Result, hit bool, err error) {
	ref := obs.SpanRefFrom(ctx)
	if ref.Valid() && cfg.Obs.Tracer != nil {
		cfg.Obs.Tracer.SetMeta("trace_id", ref.Buf.Trace().String())
	}
	runTraced := func() (Result, error) {
		simSpan := ref.Start("sim.run")
		r, err := RunContext(ctx, cfg)
		if err != nil {
			simSpan.End(obs.Str("error", "run failed"))
		} else {
			simSpan.End()
		}
		return r, err
	}
	if c == nil {
		res, err = runTraced()
		return res, false, err
	}
	key, err := ConfigHash(cfg)
	if err == ErrUncacheable {
		res, err = runTraced()
		return res, false, err
	}
	if err != nil {
		return Result{}, false, err
	}
	lookupSpan := ref.Start("cache.lookup")
	ok, err := c.GetJSONContext(ctx, key, &res)
	lookupSpan.End(obs.U64("hit", b2uCache(ok)))
	if err != nil {
		return Result{}, false, err
	}
	if ok {
		return res, true, nil
	}
	res, err = runTraced()
	if err != nil {
		return Result{}, false, err
	}
	putSpan := ref.Start("cache.put")
	_, perr := c.PutJSON(key, res)
	putSpan.End()
	if perr != nil {
		// The simulation succeeded; a failing cache write is still an
		// error (the store is misconfigured or the disk is full) but the
		// result is returned alongside it so callers can choose to
		// proceed uncached.
		return res, false, fmt.Errorf("gpuwalk: caching result: %w", perr)
	}
	return res, false, nil
}

func b2uCache(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
