package gpuwalk_test

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"gpuwalk"
	"gpuwalk/internal/gpu"
)

// simBenchConfig is the engine-benchmark workload shape: large enough
// that event-queue costs dominate setup, small enough to run in CI.
func simBenchConfig(wl string) gpuwalk.Config {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = wl
	cfg.Scheduler = gpuwalk.SIMTAware
	cfg.Gen.Scale = 0.05
	cfg.Gen.WavefrontsPerCU = 4
	cfg.Gen.InstrsPerWavefront = 16
	cfg.Seed = 7
	return cfg
}

// runEngineBench simulates cfg on the chosen event queue and returns
// the run result, events dispatched, and wall time.
func runEngineBench(t *testing.T, cfg gpuwalk.Config, referenceEngine bool) (gpuwalk.Result, uint64, time.Duration) {
	t.Helper()
	tr, err := gpuwalk.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := gpu.NewSystem(gpu.Params{
		GPU:             cfg.GPU,
		DRAM:            cfg.DRAM,
		IOMMU:           cfg.IOMMU,
		SchedKind:       cfg.Scheduler,
		SchedOpts:       cfg.SchedOpts,
		Seed:            cfg.Seed,
		ReferenceEngine: referenceEngine,
	}, tr)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, sys.Engine().Dispatched(), time.Since(start)
}

// TestBenchSimEngine measures the event engine's throughput — events
// per second through a full system simulation — on the four paper
// workloads, once on the retained container/heap reference queue and
// once on the flat four-ary heap, and records the result in
// BENCH_sim.json, the repo's perf-trajectory file for the engine.
// It doubles as a differential check: both queues must dispatch the
// same number of events and finish at the same cycle.
func TestBenchSimEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("timing benchmark; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing benchmark; skipped under -race")
	}
	type wlResult struct {
		Workload     string  `json:"workload"`
		Events       uint64  `json:"events"`
		RefNsPerEv   float64 `json:"ref_ns_per_event"`
		FlatNsPerEv  float64 `json:"flat_ns_per_event"`
		RefEvPerSec  float64 `json:"ref_events_per_sec"`
		FlatEvPerSec float64 `json:"flat_events_per_sec"`
		Speedup      float64 `json:"speedup"`
	}
	var (
		rows     []wlResult
		worst    = 1e9
		sumRef   time.Duration
		sumFlat  time.Duration
		totalEvs uint64
	)
	for _, wl := range []string{"MVT", "ATX", "GEV", "SSP"} {
		cfg := simBenchConfig(wl)
		// One throwaway run per queue warms the page cache and JIT-ish
		// effects out of the measurement; best-of-3 damps scheduler noise.
		refRes, refEvs, _ := runEngineBench(t, cfg, true)
		flatRes, flatEvs, _ := runEngineBench(t, cfg, false)
		if refEvs != flatEvs || refRes.Cycles != flatRes.Cycles {
			t.Fatalf("%s: queues diverged: %d events/%d cycles vs reference %d/%d",
				wl, flatEvs, flatRes.Cycles, refEvs, refRes.Cycles)
		}
		refBest, flatBest := time.Duration(1<<62), time.Duration(1<<62)
		for i := 0; i < 3; i++ {
			if _, _, d := runEngineBench(t, cfg, true); d < refBest {
				refBest = d
			}
			if _, _, d := runEngineBench(t, cfg, false); d < flatBest {
				flatBest = d
			}
		}
		row := wlResult{
			Workload:     wl,
			Events:       flatEvs,
			RefNsPerEv:   round3(float64(refBest.Nanoseconds()) / float64(refEvs)),
			FlatNsPerEv:  round3(float64(flatBest.Nanoseconds()) / float64(flatEvs)),
			RefEvPerSec:  round3(float64(refEvs) / refBest.Seconds()),
			FlatEvPerSec: round3(float64(flatEvs) / flatBest.Seconds()),
			Speedup:      round3(refBest.Seconds() / flatBest.Seconds()),
		}
		rows = append(rows, row)
		if row.Speedup < worst {
			worst = row.Speedup
		}
		sumRef += refBest
		sumFlat += flatBest
		totalEvs += flatEvs
		t.Logf("%s: %d events, ref %.1f ns/ev, flat %.1f ns/ev, speedup %.2fx",
			wl, row.Events, row.RefNsPerEv, row.FlatNsPerEv, row.Speedup)
	}
	overall := sumRef.Seconds() / sumFlat.Seconds()
	t.Logf("overall speedup %.2fx (worst workload %.2fx)", overall, worst)

	out, err := json.MarshalIndent(map[string]any{
		"benchmark":       "event engine: flat four-ary heap vs container/heap reference",
		"model_version":   gpuwalk.SimVersion,
		"workloads":       rows,
		"events_total":    totalEvs,
		"ref_seconds":     round3(sumRef.Seconds()),
		"flat_seconds":    round3(sumFlat.Seconds()),
		"ns_per_event":    round3(float64(sumFlat.Nanoseconds()) / float64(totalEvs)),
		"overall_speedup": round3(overall),
		"worst_speedup":   round3(worst),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// BENCH_SIM_OUT redirects the measurement file, so CI can write a
	// fresh one next to the committed BENCH_sim.json and diff the two
	// with cmd/benchdiff instead of overwriting the baseline.
	outPath := os.Getenv("BENCH_SIM_OUT")
	if outPath == "" {
		outPath = "BENCH_sim.json"
	}
	if err := os.WriteFile(outPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
