package gpuwalk_test

import (
	"fmt"

	"gpuwalk"
)

// ExampleRun simulates a small MVT run under the baseline FCFS walk
// scheduler. The instruction count is a property of the generated trace
// and is stable across model changes.
func ExampleRun() {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "MVT"
	cfg.Gen.WavefrontsPerCU = 2
	cfg.Gen.InstrsPerWavefront = 4

	res, err := gpuwalk.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("workload:", res.Workload)
	fmt.Println("scheduler:", res.Scheduler)
	fmt.Println("instructions:", res.Instructions)
	// Output:
	// workload: MVT
	// scheduler: fcfs
	// instructions: 64
}

// ExampleCompare races the paper's SIMT-aware scheduler against FCFS on
// an irregular workload and reports whether it won (the exact factor
// depends on configuration; see EXPERIMENTS.md).
func ExampleCompare() {
	cfg := gpuwalk.DefaultConfig()
	cfg.Workload = "BIC"
	cfg.Gen.WavefrontsPerCU = 4
	cfg.Gen.InstrsPerWavefront = 12

	_, _, speedup, err := gpuwalk.Compare(cfg, gpuwalk.FCFS, gpuwalk.SIMTAware)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("simt-aware beats fcfs:", speedup > 1)
	// Output:
	// simt-aware beats fcfs: true
}

// ExampleRunTrace drives the simulator with a hand-built trace instead
// of a generated benchmark.
func ExampleRunTrace() {
	tr := &gpuwalk.Trace{Name: "hello", Footprint: 1 << 16}
	tr.Wavefronts = []gpuwalk.WavefrontTrace{{
		CU: 0,
		Instrs: []gpuwalk.MemInstr{
			{Lanes: []uint64{0x10000, 0x11000, 0x12000}}, // 3 pages
			{Lanes: []uint64{0x10040}, Write: true},
		},
	}}

	res, err := gpuwalk.RunTrace(gpuwalk.DefaultConfig(), tr)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("instructions:", res.Instructions)
	fmt.Println("translations:", res.Translations)
	// Output:
	// instructions: 2
	// translations: 4
}
